// Bucket-grid spatial index over node positions.
//
// Supports the two queries the network layer needs in O(1) expected time:
//   * all points within radius r of a point (neighbor-table construction),
//   * the nearest point to an arbitrary location (home-node selection and
//     GPSR greedy checks in tests).
//
// Storage is structure-of-arrays: point coordinates live in separate x/y
// arrays and the cell buckets are flattened CSR-style into one offsets
// array plus one ids array. A radius scan then walks two contiguous
// double arrays and one contiguous id array instead of chasing a
// vector-of-vectors — the difference between ~3 cache lines and ~3
// pointer dereferences per candidate, which dominates neighbor-table
// construction at 100k-node deployments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace poolnet::net {

class SpatialIndex {
 public:
  /// Builds over `points` covering `bounds`; `cell_size` should be on the
  /// order of the typical query radius (the radio range).
  SpatialIndex(const std::vector<Point>& points, const Rect& bounds,
               double cell_size);

  /// Indices of points with distance(p, q) <= radius, appended into `out`
  /// (cleared first — capacity is the caller's scratch to reuse across
  /// calls). Ascending index order when `sorted` (callers that
  /// binary_search the result need it); pass false to skip the sort when
  /// only membership or cardinality matters. `q` need not be inside
  /// bounds.
  void within(Point q, double radius, std::vector<std::size_t>& out,
              bool sorted = true) const;

  /// Convenience wrapper returning a fresh vector; hot callers should
  /// hold a scratch buffer and use the out-parameter overload.
  std::vector<std::size_t> within(Point q, double radius,
                                  bool sorted = true) const;

  /// Index of the point nearest to q (ties by lowest index). Requires a
  /// non-empty point set.
  std::size_t nearest(Point q) const;

  std::size_t size() const { return xs_.size(); }

 private:
  std::size_t cell_of(Point p) const;
  void cell_coords(Point p, std::int64_t& cx, std::int64_t& cy) const;

  Rect bounds_;
  double cell_size_;
  std::size_t nx_ = 0, ny_ = 0;

  // SoA point storage: xs_[i], ys_[i] are point i's coordinates.
  std::vector<double> xs_, ys_;

  // CSR buckets: the ids of cell c sit in
  // cell_ids_[cell_offsets_[c] .. cell_offsets_[c + 1]), ascending.
  std::vector<std::uint32_t> cell_offsets_;
  std::vector<std::uint32_t> cell_ids_;
};

}  // namespace poolnet::net
