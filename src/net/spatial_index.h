// Bucket-grid spatial index over node positions.
//
// Supports the two queries the network layer needs in O(1) expected time:
//   * all points within radius r of a point (neighbor-table construction),
//   * the nearest point to an arbitrary location (home-node selection and
//     GPSR greedy checks in tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace poolnet::net {

class SpatialIndex {
 public:
  /// Builds over `points` covering `bounds`; `cell_size` should be on the
  /// order of the typical query radius (the radio range).
  SpatialIndex(const std::vector<Point>& points, const Rect& bounds,
               double cell_size);

  /// Indices of points with distance(p, q) <= radius. Ascending index
  /// order when `sorted` (callers that binary_search the result need it);
  /// pass false to skip the sort when only membership or cardinality
  /// matters. `q` need not be inside bounds.
  std::vector<std::size_t> within(Point q, double radius,
                                  bool sorted = true) const;

  /// Index of the point nearest to q (ties by lowest index). Requires a
  /// non-empty point set.
  std::size_t nearest(Point q) const;

  std::size_t size() const { return points_.size(); }

 private:
  std::size_t cell_of(Point p) const;
  void cell_coords(Point p, std::int64_t& cx, std::int64_t& cy) const;

  std::vector<Point> points_;
  Rect bounds_;
  double cell_size_;
  std::size_t nx_ = 0, ny_ = 0;
  std::vector<std::vector<std::size_t>> cells_;
};

}  // namespace poolnet::net
