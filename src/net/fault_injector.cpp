#include "net/fault_injector.h"

#include <algorithm>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::net {

FaultInjector::FaultInjector(sim::FaultPlan plan, std::vector<Network*> nets)
    : plan_(std::move(plan)), nets_(std::move(nets)), rng_(plan_.seed) {
  if (nets_.empty()) throw ConfigError("FaultInjector: no networks");
  for (const Network* n : nets_) {
    POOLNET_ASSERT(n != nullptr);
    POOLNET_ASSERT_MSG(n->size() == nets_[0]->size(),
                       "FaultInjector: networks must be co-deployed");
  }
}

void FaultInjector::kill_everywhere(NodeId id, std::vector<NodeId>* newly) {
  if (!nets_[0]->alive(id)) return;
  for (Network* n : nets_) n->kill(id);
  newly->push_back(id);
  ++killed_;
}

std::vector<NodeId> FaultInjector::advance(double now) {
  std::vector<NodeId> newly;
  const Network& world = *nets_[0];
  while (next_ < plan_.actions.size() && plan_.actions[next_].at <= now) {
    const sim::FaultAction& a = plan_.actions[next_++];
    switch (a.kind) {
      case sim::FaultKind::KillNode:
        if (a.node < world.size()) kill_everywhere(a.node, &newly);
        break;
      case sim::FaultKind::KillFraction: {
        // Sample without replacement from the current survivors so
        // repeated kill clauses compose (partial Fisher–Yates).
        std::vector<NodeId> pool;
        pool.reserve(world.size());
        for (NodeId id = 0; id < world.size(); ++id)
          if (world.alive(id)) pool.push_back(id);
        std::size_t want = static_cast<std::size_t>(
            a.fraction * static_cast<double>(pool.size()) + 0.5);
        want = std::min(want, pool.size());
        for (std::size_t i = 0; i < want; ++i) {
          const std::size_t j = static_cast<std::size_t>(rng_.uniform_int(
              static_cast<std::int64_t>(i),
              static_cast<std::int64_t>(pool.size()) - 1));
          std::swap(pool[i], pool[j]);
          kill_everywhere(pool[i], &newly);
        }
        break;
      }
      case sim::FaultKind::Blackout:
        for (const Node& n : world.nodes())
          if (n.alive && distance(n.pos, a.center) <= a.radius)
            kill_everywhere(n.id, &newly);
        break;
      case sim::FaultKind::DegradeStart:
        for (Network* n : nets_) n->set_extra_loss(a.extra_loss);
        break;
      case sim::FaultKind::DegradeEnd:
        for (Network* n : nets_) n->set_extra_loss(0.0);
        break;
    }
  }
  return newly;
}

}  // namespace poolnet::net
