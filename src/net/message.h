// Message taxonomy and size model.
//
// The paper's evaluation metric is "number of messages" exchanged while
// processing a query: query forwarding plus reply retrieval. We tag each
// per-hop transmission with a kind so benches can report the breakdown,
// and attach a bit-size model so the energy numbers are meaningful.
#pragma once

#include <array>
#include <cstdint>

namespace poolnet::net {

enum class MessageKind : std::uint8_t {
  Insert = 0,   ///< event en route to its storage node
  Query = 1,    ///< query from sink toward splitter / zone
  SubQuery = 2, ///< split query between index nodes / zones
  Reply = 3,    ///< qualifying events returning to the sink
  Control = 4,  ///< beacons, DHT lookups, workload-sharing handoff
};

inline constexpr std::size_t kMessageKindCount = 5;

constexpr const char* to_string(MessageKind k) {
  switch (k) {
    case MessageKind::Insert: return "insert";
    case MessageKind::Query: return "query";
    case MessageKind::SubQuery: return "subquery";
    case MessageKind::Reply: return "reply";
    case MessageKind::Control: return "control";
  }
  return "?";
}

/// Payload size model, in bits. Defaults follow typical mote packets
/// (TinyOS-era 36-byte frames were common; we allow a bit more headroom).
struct MessageSizes {
  std::uint64_t header_bits = 64;          ///< per-message routing header
  std::uint64_t attr_bits = 32;            ///< per attribute value
  std::uint64_t query_bound_bits = 32;     ///< per range bound
  std::uint64_t control_bits = 128;        ///< control payload

  /// How many qualifying events one reply message can carry. 0 means
  /// unlimited — every answering node sends ONE reply regardless of how
  /// many events qualify, which is the counting convention that matches
  /// the paper's near-flat Pool curves (its metric counts message
  /// exchanges, not payload volume). Finite values model real mote frame
  /// limits; bench/ablation_reply_packing sweeps the knob.
  std::uint32_t events_per_message = 0;

  /// Reply messages needed for `events` qualifying events under the
  /// configured packing (0 replies for 0 events).
  constexpr std::uint64_t reply_batches(std::uint64_t events) const {
    if (events == 0) return 0;
    if (events_per_message == 0) return 1;
    return (events + events_per_message - 1) / events_per_message;
  }

  /// Events carried by one (average) reply batch for sizing purposes.
  constexpr std::uint32_t reply_payload(std::uint64_t events) const {
    if (events == 0) return 0;
    if (events_per_message == 0) return static_cast<std::uint32_t>(events);
    return events_per_message;
  }

  constexpr std::uint64_t event_bits(std::size_t dims) const {
    return header_bits + attr_bits * dims;
  }
  constexpr std::uint64_t query_bits(std::size_t dims) const {
    return header_bits + 2 * query_bound_bits * dims;
  }
  constexpr std::uint64_t reply_bits(std::size_t dims,
                                     std::uint32_t events) const {
    return header_bits + attr_bits * dims * events;
  }
  /// A partial aggregate (sum, min, max, count) — fixed size, the whole
  /// point of in-network aggregation.
  constexpr std::uint64_t aggregate_bits() const {
    return header_bits + 4 * attr_bits;
  }
};

/// Link-layer loss and retransmission model.
///
/// Each hop attempt fails independently with `loss_probability`; the
/// sender retransmits (ARQ) until the frame gets through, up to
/// `max_attempts` per hop, after which delivery is forced (persistent
/// ARQ with bounded accounting — routing algorithms stay lossless, the
/// LEDGER carries the cost of the unreliable channel). Every attempt is
/// a transmission: it counts as a message and burns transmit energy;
/// receive energy is charged once, for the successful frame.
struct LinkLossModel {
  double loss_probability = 0.0;  ///< 0 = ideal links (the paper's model)
  std::uint32_t max_attempts = 16;
};

/// Global per-kind tallies (per-hop transmissions).
struct TrafficTally {
  std::array<std::uint64_t, kMessageKindCount> by_kind{};
  std::uint64_t total = 0;
  /// Messages whose final hop was addressed to a dead node: the sender
  /// burned its full ARQ budget waiting for an ack that never came.
  std::uint64_t lost = 0;
  double energy_j = 0.0;

  std::uint64_t of(MessageKind k) const {
    return by_kind[static_cast<std::size_t>(k)];
  }

  void clear() {
    by_kind.fill(0);
    total = 0;
    lost = 0;
    energy_j = 0.0;
  }

  friend TrafficTally operator-(TrafficTally a, const TrafficTally& b) {
    for (std::size_t i = 0; i < kMessageKindCount; ++i)
      a.by_kind[i] -= b.by_kind[i];
    a.total -= b.total;
    a.lost -= b.lost;
    a.energy_j -= b.energy_j;
    return a;
  }
};

}  // namespace poolnet::net
