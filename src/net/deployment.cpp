#include "net/deployment.h"

#include <cmath>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::net {

double field_side_for_density(std::size_t n, double radio_m,
                              double avg_neighbors) {
  if (n == 0 || radio_m <= 0.0 || avg_neighbors <= 0.0)
    throw ConfigError("field_side_for_density: all inputs must be positive");
  constexpr double kPi = 3.14159265358979323846;
  const double density = avg_neighbors / (kPi * radio_m * radio_m);
  return std::sqrt(static_cast<double>(n) / density);
}

std::vector<Point> deploy_uniform(std::size_t n, const Rect& field, Rng& rng) {
  if (field.width() <= 0.0 || field.height() <= 0.0)
    throw ConfigError("deploy_uniform: degenerate field");
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(field.min_x, field.max_x),
                   rng.uniform(field.min_y, field.max_y)});
  }
  return pts;
}

std::vector<Point> deploy_grid_jitter(std::size_t n, const Rect& field,
                                      double jitter_frac, Rng& rng) {
  if (field.width() <= 0.0 || field.height() <= 0.0)
    throw ConfigError("deploy_grid_jitter: degenerate field");
  if (jitter_frac < 0.0 || jitter_frac > 1.0)
    throw ConfigError("deploy_grid_jitter: jitter_frac must be in [0,1]");
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const double cw = field.width() / static_cast<double>(side);
  const double ch = field.height() / static_cast<double>(side);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gx = i % side;
    const std::size_t gy = i / side;
    const double cx = field.min_x + (static_cast<double>(gx) + 0.5) * cw;
    const double cy = field.min_y + (static_cast<double>(gy) + 0.5) * ch;
    const double jx = rng.uniform(-0.5, 0.5) * jitter_frac * cw;
    const double jy = rng.uniform(-0.5, 0.5) * jitter_frac * ch;
    pts.push_back(field.clamp({cx + jx, cy + jy}));
  }
  return pts;
}

}  // namespace poolnet::net
