#include "storage/store_config.h"

#include <vector>

#include "storage/brute_force_store.h"

namespace poolnet::storage {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_size(const std::string& s, std::size_t* out) {
  if (s.empty()) return false;
  std::size_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

bool parse_store_spec(const std::string& spec, StoreConfig* config,
                      std::string* error) {
  const auto parts = split(spec, ':');
  if (parts[0] == "flat") {
    if (parts.size() != 1) {
      *error = "--store flat takes no parameters: '" + spec + "'";
      return false;
    }
    config->kind = StoreKind::Flat;
    return true;
  }
  if (parts[0] != "paged") {
    *error = "unknown store '" + spec +
             "' (want flat or paged[:<pages>:<page-kb>[:mem|file]])";
    return false;
  }
  StoreConfig parsed;
  parsed.kind = StoreKind::Paged;
  if (parts.size() != 1 && parts.size() != 3 && parts.size() != 4) {
    *error = "malformed paged store spec '" + spec +
             "' (want paged[:<pages>:<page-kb>[:mem|file]])";
    return false;
  }
  if (parts.size() >= 3) {
    std::size_t pages = 0;
    std::size_t page_kb = 0;
    if (!parse_size(parts[1], &pages) || pages < 2) {
      *error = "bad buffer-pool page count in '" + spec + "' (minimum 2)";
      return false;
    }
    if (!parse_size(parts[2], &page_kb) || page_kb == 0) {
      *error = "bad page size in '" + spec + "' (whole KB, minimum 1)";
      return false;
    }
    parsed.paged.pool_pages = pages;
    parsed.paged.page_bytes = page_kb * 1024;
  }
  if (parts.size() == 4) {
    if (parts[3] == "mem") {
      parsed.paged.backing = PagedStoreOptions::Backing::Mem;
    } else if (parts[3] == "file") {
      parsed.paged.backing = PagedStoreOptions::Backing::File;
    } else {
      *error = "bad store backing '" + parts[3] + "' (want mem or file)";
      return false;
    }
  }
  *config = parsed;
  return true;
}

std::string to_spec(const StoreConfig& config) {
  if (config.kind == StoreKind::Flat) return "flat";
  const char* backing =
      config.paged.backing == PagedStoreOptions::Backing::File ? "file" : "mem";
  return "paged:" + std::to_string(config.paged.pool_pages) + ":" +
         std::to_string(config.paged.page_bytes / 1024) + ":" + backing;
}

std::unique_ptr<DcsSystem> make_central_store(std::size_t dims,
                                              const StoreConfig& config,
                                              net::Network* network,
                                              const routing::Router* router,
                                              net::NodeId sink_node,
                                              obs::MetricsRegistry* metrics) {
  const bool networked = network != nullptr && router != nullptr;
  if (config.kind == StoreKind::Paged) {
    if (networked)
      return std::make_unique<PagedStore>(dims, config.paged, *network,
                                          *router, sink_node, metrics);
    return std::make_unique<PagedStore>(dims, config.paged, metrics);
  }
  if (networked)
    return std::make_unique<BruteForceStore>(dims, *network, *router,
                                             sink_node);
  return std::make_unique<BruteForceStore>(dims);
}

}  // namespace poolnet::storage
