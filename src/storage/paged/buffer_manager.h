// The LRU buffer pool between the paged store and its PageFile
// (DESIGN.md §13).
//
// A fixed number of frames cache pages; every access goes through a Pin,
// an RAII page lock that (a) gives out the frame pointer and (b) vetoes
// eviction while live. Replacement is clock-sweep — a one-bit LRU
// approximation whose victim scan skips pinned frames; dirty victims are
// written back before their frame is reused. The store's access paths
// hold at most two pins at once (chain-walk current + previous), so the
// pool functions correctly down to pool_pages = 2 — the eviction-heavy
// configuration the equivalence tests hammer.
//
// Counters (hits, misses, evictions, dirty writebacks) live in a
// MetricsRegistry under `<prefix>.*` — `store.pager.*` by default — next
// to every other subsystem, with PagerStats as the ergonomic view; the
// pinned high-water mark is published as a gauge whenever it rises.
//
// NOT thread-safe: one BufferManager per store, like the Network a
// deployment routes over.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/paged/page.h"
#include "storage/paged/page_file.h"

namespace poolnet::storage {

/// Point-in-time view of the pager counters (the registry holds the
/// counters; this struct is the view stats() assembles).
struct PagerStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;   ///< dirty frames flushed to the file
  std::size_t pinned = 0;         ///< pins live right now
  std::size_t pinned_high_water = 0;
  std::size_t resident = 0;       ///< frames currently holding a page
  std::size_t pool_pages = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class BufferManager {
 public:
  /// With a non-null `metrics`, the pager counters register there under
  /// `<prefix>.hits` etc.; without one the manager owns a private
  /// registry — same code path, nothing to scrape unless asked via
  /// stats(). `file` must outlive the manager.
  BufferManager(PageFile& file, std::size_t pool_pages,
                obs::MetricsRegistry* metrics = nullptr,
                const std::string& prefix = "store.pager");
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// RAII page lock: holds the frame pinned (unevictable) and exposes its
  /// bytes. Movable so fetch() can return it; double-unpin is impossible
  /// by construction (the moved-from Pin is empty) and asserted against
  /// in the manager for belt and braces.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { swap(other); }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        swap(other);
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    bool valid() const { return mgr_ != nullptr; }
    PageId id() const { return id_; }

    std::uint8_t* data() const;

    /// Marks the frame dirty: its bytes differ from the file copy and
    /// must be written back before the frame is reused.
    void mark_dirty() const;

    /// Unpins early (idempotent; the destructor does the same).
    void release();

   private:
    friend class BufferManager;
    Pin(BufferManager* mgr, std::size_t frame, PageId id)
        : mgr_(mgr), frame_(frame), id_(id) {}
    void swap(Pin& other) noexcept {
      std::swap(mgr_, other.mgr_);
      std::swap(frame_, other.frame_);
      std::swap(id_, other.id_);
    }

    BufferManager* mgr_ = nullptr;
    std::size_t frame_ = 0;
    PageId id_ = kNoPage;
  };

  /// Pins page `id`, reading it from the file on a miss (evicting a
  /// victim frame if the pool is full).
  Pin fetch(PageId id);

  /// Pins a frame for freshly-allocated page `id` WITHOUT reading the
  /// file (the page has no meaningful bytes yet); the frame arrives
  /// zeroed and dirty. `id` must not be resident.
  Pin create(PageId id);

  /// Writes every dirty frame back to the file (pages stay resident).
  void flush_all();

  /// Drops page `id` from the pool if resident (no writeback — the
  /// caller declares the contents dead, e.g. a page moved to the free
  /// list). Must not be pinned.
  void discard(PageId id);

  PagerStats stats() const;

  PageFile& file() { return file_; }

 private:
  friend class Pin;

  struct Frame {
    PageId page = kNoPage;
    std::uint32_t pins = 0;
    bool dirty = false;
    bool referenced = false;  ///< clock bit
  };

  std::uint8_t* frame_data(std::size_t frame) {
    return pool_.get() + frame * file_.page_bytes();
  }

  /// Clock sweep: returns a free or victim frame (flushed if dirty).
  std::size_t grab_frame();

  void map_page(PageId id, std::size_t frame);
  std::int64_t frame_of(PageId id) const;

  void pin_frame(std::size_t frame);
  void unpin(std::size_t frame, PageId id);

  PageFile& file_;
  std::size_t pool_pages_;
  std::unique_ptr<std::uint8_t[]> pool_;  ///< pool_pages * page_bytes
  std::vector<Frame> frames_;
  /// page id -> frame index (-1 = not resident); dense, grows with the
  /// file — 4 bytes per page ever allocated, negligible next to frames.
  std::vector<std::int32_t> frame_of_;
  std::size_t clock_hand_ = 0;
  std::size_t resident_ = 0;
  std::size_t pinned_ = 0;
  std::size_t pinned_high_water_ = 0;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  ///< fallback
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string prefix_;
  obs::MetricsRegistry::Counter hits_, misses_, evictions_, writebacks_;
};

}  // namespace poolnet::storage
