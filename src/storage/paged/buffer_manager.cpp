#include "storage/paged/buffer_manager.h"

#include <cstring>

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::storage {

BufferManager::BufferManager(PageFile& file, std::size_t pool_pages,
                             obs::MetricsRegistry* metrics,
                             const std::string& prefix)
    : file_(file), pool_pages_(pool_pages), prefix_(prefix) {
  // The store's access paths hold up to two pins at once (chain walk:
  // current + previous); below two frames they would deadlock on
  // eviction, so reject the configuration outright.
  if (pool_pages_ < 2)
    throw ConfigError("BufferManager: pool needs at least 2 pages");
  pool_ = std::make_unique<std::uint8_t[]>(pool_pages_ * file_.page_bytes());
  frames_.resize(pool_pages_);
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  hits_ = metrics_->counter(prefix_ + ".hits");
  misses_ = metrics_->counter(prefix_ + ".misses");
  evictions_ = metrics_->counter(prefix_ + ".evictions");
  writebacks_ = metrics_->counter(prefix_ + ".writebacks");
}

BufferManager::~BufferManager() {
  POOLNET_ASSERT_MSG(pinned_ == 0,
                     "BufferManager destroyed with live pins");
}

std::uint8_t* BufferManager::Pin::data() const {
  POOLNET_ASSERT_MSG(mgr_ != nullptr, "Pin::data on an empty pin");
  return mgr_->frame_data(frame_);
}

void BufferManager::Pin::mark_dirty() const {
  POOLNET_ASSERT_MSG(mgr_ != nullptr, "Pin::mark_dirty on an empty pin");
  mgr_->frames_[frame_].dirty = true;
}

void BufferManager::Pin::release() {
  if (mgr_ != nullptr) {
    mgr_->unpin(frame_, id_);
    mgr_ = nullptr;
  }
}

std::int64_t BufferManager::frame_of(PageId id) const {
  if (id >= frame_of_.size()) return -1;
  return frame_of_[id];
}

void BufferManager::map_page(PageId id, std::size_t frame) {
  if (id >= frame_of_.size()) frame_of_.resize(id + 1, -1);
  frame_of_[id] = static_cast<std::int32_t>(frame);
}

void BufferManager::pin_frame(std::size_t frame) {
  Frame& f = frames_[frame];
  f.referenced = true;
  ++f.pins;
  ++pinned_;
  if (pinned_ > pinned_high_water_) {
    pinned_high_water_ = pinned_;
    metrics_->set_gauge(prefix_ + ".pinned_high_water",
                        static_cast<double>(pinned_high_water_));
  }
}

void BufferManager::unpin(std::size_t frame, PageId id) {
  Frame& f = frames_[frame];
  POOLNET_ASSERT_MSG(f.page == id && f.pins > 0,
                     "BufferManager: unpin of an unpinned page");
  --f.pins;
  --pinned_;
}

std::size_t BufferManager::grab_frame() {
  // Two sweeps over the clock: the first pass clears reference bits, the
  // second takes the first unreferenced unpinned frame. A frame seen
  // pinned on both passes is skipped; 2 * pool_pages steps without a
  // victim means every frame is pinned — a pin-discipline bug upstream.
  for (std::size_t step = 0; step < 2 * pool_pages_; ++step) {
    const std::size_t i = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % pool_pages_;
    Frame& f = frames_[i];
    if (f.page == kNoPage) return i;  // never used yet
    if (f.pins > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    if (f.dirty) {
      file_.write(f.page, frame_data(i));
      writebacks_.inc();
      f.dirty = false;
    }
    frame_of_[f.page] = -1;
    f.page = kNoPage;
    --resident_;
    evictions_.inc();
    return i;
  }
  POOLNET_ASSERT_MSG(false, "BufferManager: all frames pinned, cannot evict");
  return 0;  // unreachable
}

BufferManager::Pin BufferManager::fetch(PageId id) {
  POOLNET_ASSERT_MSG(id != kNoPage, "BufferManager: fetch of kNoPage");
  const std::int64_t have = frame_of(id);
  if (have >= 0) {
    hits_.inc();
    const auto frame = static_cast<std::size_t>(have);
    pin_frame(frame);
    return Pin(this, frame, id);
  }
  misses_.inc();
  const std::size_t frame = grab_frame();
  file_.read(id, frame_data(frame));
  frames_[frame].page = id;
  frames_[frame].dirty = false;
  map_page(id, frame);
  ++resident_;
  pin_frame(frame);
  return Pin(this, frame, id);
}

BufferManager::Pin BufferManager::create(PageId id) {
  POOLNET_ASSERT_MSG(id != kNoPage && frame_of(id) < 0,
                     "BufferManager: create of a resident page");
  const std::size_t frame = grab_frame();
  std::memset(frame_data(frame), 0, file_.page_bytes());
  frames_[frame].page = id;
  frames_[frame].dirty = true;
  map_page(id, frame);
  ++resident_;
  pin_frame(frame);
  return Pin(this, frame, id);
}

void BufferManager::flush_all() {
  for (std::size_t i = 0; i < pool_pages_; ++i) {
    Frame& f = frames_[i];
    if (f.page != kNoPage && f.dirty) {
      file_.write(f.page, frame_data(i));
      writebacks_.inc();
      f.dirty = false;
    }
  }
}

void BufferManager::discard(PageId id) {
  const std::int64_t have = frame_of(id);
  if (have < 0) return;
  Frame& f = frames_[static_cast<std::size_t>(have)];
  POOLNET_ASSERT_MSG(f.pins == 0, "BufferManager: discard of a pinned page");
  frame_of_[id] = -1;
  f.page = kNoPage;
  f.dirty = false;
  f.referenced = false;
  --resident_;
}

PagerStats BufferManager::stats() const {
  PagerStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  s.writebacks = writebacks_.value();
  s.pinned = pinned_;
  s.pinned_high_water = pinned_high_water_;
  s.resident = resident_;
  s.pool_pages = pool_pages_;
  return s;
}

}  // namespace poolnet::storage
