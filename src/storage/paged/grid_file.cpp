#include "storage/paged/grid_file.h"

#include <algorithm>

#include "common/error.h"

namespace poolnet::storage {

GridFile::GridFile(std::size_t dims, std::size_t resolution)
    : dims_(std::min(dims, kMaxGridDims)), resolution_(resolution) {
  if (resolution_ == 0) throw ConfigError("GridFile: zero resolution");
  std::size_t cells = 1;
  for (std::size_t d = 0; d < dims_; ++d) cells *= resolution_;
  cells_.resize(cells);
}

std::size_t GridFile::slice_of(double v) const {
  if (v <= 0.0) return 0;
  auto s = static_cast<std::size_t>(v * static_cast<double>(resolution_));
  return std::min(s, resolution_ - 1);
}

std::size_t GridFile::cell_of(const Values& values) const {
  std::size_t cell = 0;
  for (std::size_t d = 0; d < dims_; ++d)
    cell = cell * resolution_ + slice_of(values[d]);
  return cell;
}

void GridFile::relevant_cells(const RangeQuery& q,
                              std::vector<std::size_t>* out) const {
  // Per-dimension slice ranges of the query box, then the cross product
  // in row-major order (so output indices come out ascending).
  std::size_t lo[kMaxGridDims];
  std::size_t hi[kMaxGridDims];
  for (std::size_t d = 0; d < dims_; ++d) {
    const ClosedInterval b = q.bound(d);
    lo[d] = slice_of(b.lo);
    hi[d] = slice_of(b.hi);
  }
  std::size_t idx[kMaxGridDims];
  for (std::size_t d = 0; d < dims_; ++d) idx[d] = lo[d];
  for (;;) {
    std::size_t cell = 0;
    for (std::size_t d = 0; d < dims_; ++d)
      cell = cell * resolution_ + idx[d];
    out->push_back(cell);
    // Odometer increment over [lo, hi] per dimension.
    std::size_t d = dims_;
    while (d > 0) {
      --d;
      if (idx[d] < hi[d]) {
        ++idx[d];
        for (std::size_t r = d + 1; r < dims_; ++r) idx[r] = lo[r];
        break;
      }
      if (d == 0) return;
    }
  }
}

}  // namespace poolnet::storage
