#include "storage/paged/grid_file.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace poolnet::storage {

GridFile::GridFile(std::size_t dims, std::size_t resolution)
    : dims_(std::min(dims, kMaxGridDims)),
      full_dims_(dims),
      resolution_(resolution) {
  if (resolution_ == 0) throw ConfigError("GridFile: zero resolution");
  std::size_t cells = 1;
  for (std::size_t d = 0; d < dims_; ++d) cells *= resolution_;
  cells_.resize(cells);
}

std::size_t GridFile::slice_of(double v) const {
  if (v <= 0.0) return 0;
  auto s = static_cast<std::size_t>(v * static_cast<double>(resolution_));
  return std::min(s, resolution_ - 1);
}

std::size_t GridFile::cell_of(const Values& values) const {
  std::size_t cell = 0;
  for (std::size_t d = 0; d < dims_; ++d)
    cell = cell * resolution_ + slice_of(values[d]);
  return cell;
}

void GridFile::relevant_cells(const RangeQuery& q,
                              std::vector<std::size_t>* out) const {
  // Per-dimension slice ranges of the query box, then the cross product
  // in row-major order (so output indices come out ascending).
  std::size_t lo[kMaxGridDims];
  std::size_t hi[kMaxGridDims];
  for (std::size_t d = 0; d < dims_; ++d) {
    const ClosedInterval b = q.bound(d);
    lo[d] = slice_of(b.lo);
    hi[d] = slice_of(b.hi);
  }
  std::size_t idx[kMaxGridDims];
  for (std::size_t d = 0; d < dims_; ++d) idx[d] = lo[d];
  for (;;) {
    std::size_t cell = 0;
    for (std::size_t d = 0; d < dims_; ++d)
      cell = cell * resolution_ + idx[d];
    out->push_back(cell);
    // Odometer increment over [lo, hi] per dimension.
    std::size_t d = dims_;
    while (d > 0) {
      --d;
      if (idx[d] < hi[d]) {
        ++idx[d];
        for (std::size_t r = d + 1; r < dims_; ++r) idx[r] = lo[r];
        break;
      }
      if (d == 0) return;
    }
  }
}

void GridFile::dir_reset(PageId page) {
  const std::size_t need = static_cast<std::size_t>(page) + 1;
  if (dir_next_.size() < need) {
    dir_next_.resize(need, kNoPage);
    dir_zmin_.resize(need * full_dims_,
                     std::numeric_limits<double>::infinity());
    dir_zmax_.resize(need * full_dims_,
                     -std::numeric_limits<double>::infinity());
  }
  dir_next_[page] = kNoPage;
  dir_zone_reset(page);
}

void GridFile::dir_zone_reset(PageId page) {
  for (std::size_t d = 0; d < full_dims_; ++d) {
    dir_zmin_[page * full_dims_ + d] = std::numeric_limits<double>::infinity();
    dir_zmax_[page * full_dims_ + d] =
        -std::numeric_limits<double>::infinity();
  }
}

void GridFile::dir_zone_extend(PageId page, const Values& values) {
  double* zmin = &dir_zmin_[page * full_dims_];
  double* zmax = &dir_zmax_[page * full_dims_];
  for (std::size_t d = 0; d < full_dims_; ++d) {
    if (values[d] < zmin[d]) zmin[d] = values[d];
    if (values[d] > zmax[d]) zmax[d] = values[d];
  }
}

bool GridFile::dir_zone_overlaps(PageId page, const RangeQuery& q) const {
  const double* zmin = &dir_zmin_[page * full_dims_];
  const double* zmax = &dir_zmax_[page * full_dims_];
  const auto& bounds = q.bounds();
  for (std::size_t d = 0; d < full_dims_; ++d) {
    if (zmax[d] < bounds[d].lo || zmin[d] > bounds[d].hi) return false;
  }
  return true;
}

}  // namespace poolnet::storage
