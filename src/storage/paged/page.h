// Fixed-size pages of canonically-encoded events (DESIGN.md §13).
//
// A page is the unit of transfer between the buffer pool and the backing
// PageFile. Records are fixed-width — id, source, detection time and the
// k attribute values, all little-endian — so slot arithmetic replaces a
// per-record length prefix and a page never needs compaction metadata
// beyond its record count. Pages chain into per-bucket lists through the
// `next` field in their header (the grid-file index stores only the
// chain heads/tails; everything else lives in the pages themselves).
#pragma once

#include <cstdint>
#include <cstring>

#include "common/assert.h"
#include "storage/event.h"

namespace poolnet::storage {

using PageId = std::uint32_t;
inline constexpr PageId kNoPage = static_cast<PageId>(-1);

/// Page header: chain link + occupancy. 8 bytes, at offset 0.
///   [0..3]  next page in the bucket chain (kNoPage terminates)
///   [4..5]  record count
///   [6..7]  reserved (zero)
inline constexpr std::size_t kPageHeaderBytes = 8;

// --- little-endian scalar encoding (canonical on every host) -----------

inline void store_u32_le(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint32_t load_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline void store_u64_le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint64_t load_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline void store_f64_le(std::uint8_t* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  store_u64_le(p, bits);
}

inline double load_f64_le(const std::uint8_t* p) {
  const std::uint64_t bits = load_u64_le(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Canonical record width for k-dimensional events:
/// id (8) + source (4) + detected_at (8) + k values (8 each).
inline constexpr std::size_t event_record_bytes(std::size_t dims) {
  return 8 + 4 + 8 + 8 * dims;
}

/// Records a page of `page_bytes` holds for k-dimensional events.
inline constexpr std::size_t page_capacity(std::size_t page_bytes,
                                           std::size_t dims) {
  const std::size_t payload =
      page_bytes > kPageHeaderBytes ? page_bytes - kPageHeaderBytes : 0;
  return payload / event_record_bytes(dims);
}

inline void encode_event(std::uint8_t* p, const Event& e) {
  store_u64_le(p, e.id);
  store_u32_le(p + 8, e.source);
  store_f64_le(p + 12, e.detected_at);
  for (std::size_t d = 0; d < e.dims(); ++d)
    store_f64_le(p + 20 + 8 * d, e.values[d]);
}

inline Event decode_event(const std::uint8_t* p, std::size_t dims) {
  Event e;
  e.id = load_u64_le(p);
  e.source = load_u32_le(p + 8);
  e.detected_at = load_f64_le(p + 12);
  for (std::size_t d = 0; d < dims; ++d)
    e.values.push_back(load_f64_le(p + 20 + 8 * d));
  return e;
}

/// Typed view over one resident page frame. The view is only valid while
/// the frame is pinned (see BufferManager::Pin); it never owns memory.
class PageView {
 public:
  PageView(std::uint8_t* frame, std::size_t page_bytes, std::size_t dims)
      : frame_(frame), page_bytes_(page_bytes), dims_(dims) {}

  PageId next() const { return load_u32_le(frame_); }
  void set_next(PageId id) { store_u32_le(frame_, id); }

  std::size_t count() const {
    return frame_[4] | (static_cast<std::size_t>(frame_[5]) << 8);
  }
  void set_count(std::size_t n) {
    frame_[4] = static_cast<std::uint8_t>(n & 0xff);
    frame_[5] = static_cast<std::uint8_t>((n >> 8) & 0xff);
  }

  std::size_t capacity() const { return page_capacity(page_bytes_, dims_); }

  std::uint8_t* record(std::size_t slot) {
    POOLNET_ASSERT(slot < capacity());
    return frame_ + kPageHeaderBytes + slot * event_record_bytes(dims_);
  }
  const std::uint8_t* record(std::size_t slot) const {
    POOLNET_ASSERT(slot < capacity());
    return frame_ + kPageHeaderBytes + slot * event_record_bytes(dims_);
  }

  /// Appends `e`; the caller checked count() < capacity().
  void append(const Event& e) {
    const std::size_t n = count();
    POOLNET_ASSERT(n < capacity());
    encode_event(record(n), e);
    set_count(n + 1);
  }

  Event event_at(std::size_t slot) const { return decode_event(record(slot), dims_); }

  /// Initializes an empty page (fresh from the allocator).
  void format() {
    set_next(kNoPage);
    set_count(0);
    frame_[6] = frame_[7] = 0;
  }

 private:
  std::uint8_t* frame_;
  std::size_t page_bytes_;
  std::size_t dims_;
};

}  // namespace poolnet::storage
