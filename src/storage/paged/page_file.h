// Backing storage for pages: where evicted frames go and misses come
// from (DESIGN.md §13).
//
// Two implementations share the interface: MemPageFile keeps pages in a
// segment vector (deterministic, allocator-friendly — the unit-test and
// sanitizer workhorse), TempFilePageFile pread/pwrites an unlinked
// temporary file so the store's resident footprint stays bounded by the
// buffer pool no matter how many pages exist — the out-of-core mode the
// --scale paged arm measures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace poolnet::storage {

class PageFile {
 public:
  explicit PageFile(std::size_t page_bytes);
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  std::size_t page_bytes() const { return page_bytes_; }

  /// Extends the file by one (zeroed) page and returns its id. Ids are
  /// dense: the n-th allocation returns n-1.
  virtual std::uint32_t allocate() = 0;

  /// Copies page `id` into `out` (page_bytes() bytes).
  virtual void read(std::uint32_t id, std::uint8_t* out) = 0;

  /// Persists `data` (page_bytes() bytes) as page `id`.
  virtual void write(std::uint32_t id, const std::uint8_t* data) = 0;

  /// Pages ever allocated (free-listed pages included — the file never
  /// shrinks; reuse is the store's business).
  virtual std::size_t page_count() const = 0;

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 protected:
  std::size_t page_bytes_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

/// Pages live in fixed-size in-memory segments (one allocation per
/// kSegmentPages pages, so growth never copies existing pages).
class MemPageFile final : public PageFile {
 public:
  explicit MemPageFile(std::size_t page_bytes);

  std::uint32_t allocate() override;
  void read(std::uint32_t id, std::uint8_t* out) override;
  void write(std::uint32_t id, const std::uint8_t* data) override;
  std::size_t page_count() const override { return pages_; }

 private:
  static constexpr std::size_t kSegmentPages = 64;

  std::uint8_t* page_ptr(std::uint32_t id);

  std::vector<std::unique_ptr<std::uint8_t[]>> segments_;
  std::size_t pages_ = 0;
};

/// Unlinked temporary file under `dir` (empty = $TMPDIR, falling back to
/// /tmp), accessed with pread/pwrite. The fd is the only handle — the
/// name is gone the moment the constructor returns, so crashed runs leak
/// nothing.
class TempFilePageFile final : public PageFile {
 public:
  explicit TempFilePageFile(std::size_t page_bytes, std::string dir = "");
  ~TempFilePageFile() override;

  std::uint32_t allocate() override;
  void read(std::uint32_t id, std::uint8_t* out) override;
  void write(std::uint32_t id, const std::uint8_t* data) override;
  std::size_t page_count() const override { return pages_; }

 private:
  int fd_ = -1;
  std::size_t pages_ = 0;
};

}  // namespace poolnet::storage
