// Out-of-core drop-in for BruteForceStore (DESIGN.md §13).
//
// Events live in fixed-size pages behind a BufferManager instead of a
// flat std::vector, so the store's resident footprint is the buffer pool
// — not the working set. A grid-file index over [0,1]^k maps each event
// to the page chain of its attribute cell; queries touch only the chains
// their box overlaps. Expiry compacts pages in place and returns empty
// pages to a free list, so insert+expire churn reuses pages instead of
// growing the file without bound.
//
// Equivalence contract (what the serial-equivalence tests pin down):
// query results are returned in ascending event-id order, and aggregates
// accumulate in that same order — for workloads whose ids are assigned
// in insertion order (EventGenerator's are), results and float sums are
// byte-identical to BruteForceStore's insertion-order scan.
//
// The networked cost model is BruteForceStore's verbatim: inserts route
// source → base station, queries route sink → base station and replies
// come back in packed batches. Same routes, same ledger — the paging is
// invisible to the traffic accounting.
#pragma once

#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "storage/column/column_store.h"
#include "storage/dcs_system.h"
#include "storage/paged/buffer_manager.h"
#include "storage/paged/grid_file.h"
#include "storage/paged/page_file.h"

namespace poolnet::net {
class Network;
}

namespace poolnet::routing {
class Router;
}

namespace poolnet::storage {

struct PagedStoreOptions {
  std::size_t pool_pages = 256;  ///< buffer-pool frames (>= 2)
  std::size_t page_bytes = 4096;

  /// Mem keeps pages in segment vectors (deterministic, sanitizer-clean
  /// default); File pread/pwrites an unlinked temp file — the mode whose
  /// RSS stays bounded by the pool.
  enum class Backing { Mem, File };
  Backing backing = Backing::Mem;

  /// Grid-file cells per partitioned dimension.
  std::size_t grid_resolution = 4;

  /// Directory for File backing ("" = $TMPDIR, falling back to /tmp).
  std::string file_dir;
};

class PagedStore final : public DcsSystem {
 public:
  /// Pure-oracle construction: no network, zero message costs.
  explicit PagedStore(std::size_t dims, PagedStoreOptions options = {},
                      obs::MetricsRegistry* metrics = nullptr,
                      const std::string& prefix = "store.pager");

  /// Networked construction: events are shipped to `sink_node` (base
  /// station) at insert time; queries are answered there.
  PagedStore(std::size_t dims, PagedStoreOptions options,
             net::Network& network, const routing::Router& router,
             net::NodeId sink_node, obs::MetricsRegistry* metrics = nullptr,
             const std::string& prefix = "store.pager");

  std::string name() const override { return "central"; }
  std::string describe() const override;
  std::size_t dims() const override { return dims_; }
  InsertReceipt insert(net::NodeId source, const Event& event) override;
  QueryReceipt query(net::NodeId sink, const RangeQuery& query) override;
  /// Skyline with page-directory dominance pruning: a page whose zone-map
  /// max corner is dominated by a collected event is skipped BEFORE it is
  /// faulted into the pool.
  QueryReceipt skyline(net::NodeId sink, const SkylineQuery& query) override;
  /// k-NN fetching pages in zone-map min-distance order, stopping once
  /// the next page cannot beat the k-th best.
  QueryReceipt k_nearest(net::NodeId sink,
                         const KNearestQuery& query) override;
  AggregateReceipt aggregate(net::NodeId sink, const RangeQuery& query,
                             AggregateKind kind,
                             std::size_t value_dim) override;
  std::size_t stored_count() const override { return stored_; }
  std::size_t expire_before(double cutoff) override;

  /// All events matching `q`, in ascending id order (oracle answer, no
  /// costs).
  std::vector<Event> matching(const RangeQuery& q) const;

  /// Scratch-buffer variant: appends matches to `out`, keeping the
  /// appended range in ascending id order.
  void matching_into(const RangeQuery& q, std::vector<Event>& out) const;

  const column::ScanStats* scan_stats() const override {
    return &scan_stats_;
  }

  const PagedStoreOptions& options() const { return options_; }
  PagerStats pager_stats() const { return buffer_->stats(); }
  std::size_t page_count() const { return file_->page_count(); }
  std::size_t free_pages() const { return free_pages_.size(); }

 private:
  PageView view(const BufferManager::Pin& pin) const;

  /// Charges the sink->base-station query leg and the packed reply legs
  /// for `receipt.events` (BruteForceStore's cost model verbatim); no-op
  /// in pure-oracle mode.
  void charge_query_traffic(net::NodeId sink, QueryReceipt& receipt) const;

  /// Appends every resident event of `page` to `out` (no filtering).
  void page_events_into(PageId page, std::vector<Event>& out) const;

  /// Pops the free list or extends the file; the returned page is pinned,
  /// zeroed and formatted.
  BufferManager::Pin alloc_page(PageId* id);

  void append_event(const Event& event);

  std::size_t dims_;
  PagedStoreOptions options_;
  std::unique_ptr<PageFile> file_;
  mutable std::unique_ptr<BufferManager> buffer_;  ///< fetch() pins in const scans
  GridFile grid_;
  std::vector<PageId> free_pages_;
  mutable column::ScanStats scan_stats_;
  std::size_t stored_ = 0;

  net::Network* network_ = nullptr;          // null in oracle mode
  const routing::Router* router_ = nullptr;  // null in oracle mode
  net::NodeId base_station_ = net::kNoNode;
};

}  // namespace poolnet::storage
