#include "storage/paged/paged_store.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "net/network.h"
#include "routing/router.h"

namespace poolnet::storage {

PagedStore::PagedStore(std::size_t dims, PagedStoreOptions options,
                       obs::MetricsRegistry* metrics,
                       const std::string& prefix)
    : dims_(dims),
      options_(std::move(options)),
      grid_(dims, options_.grid_resolution == 0 ? 1 : options_.grid_resolution) {
  if (dims == 0 || dims > kMaxDims)
    throw ConfigError("PagedStore: bad dimensionality");
  if (page_capacity(options_.page_bytes, dims_) == 0)
    throw ConfigError("PagedStore: page too small for even one record");
  if (options_.backing == PagedStoreOptions::Backing::File)
    file_ = std::make_unique<TempFilePageFile>(options_.page_bytes,
                                               options_.file_dir);
  else
    file_ = std::make_unique<MemPageFile>(options_.page_bytes);
  buffer_ = std::make_unique<BufferManager>(*file_, options_.pool_pages,
                                            metrics, prefix);
}

PagedStore::PagedStore(std::size_t dims, PagedStoreOptions options,
                       net::Network& network, const routing::Router& router,
                       net::NodeId sink_node, obs::MetricsRegistry* metrics,
                       const std::string& prefix)
    : PagedStore(dims, std::move(options), metrics, prefix) {
  network_ = &network;
  router_ = &router;
  base_station_ = sink_node;
}

std::string PagedStore::describe() const {
  const char* backing =
      options_.backing == PagedStoreOptions::Backing::File ? "file" : "mem";
  return "central/paged (pool=" + std::to_string(options_.pool_pages) +
         ", page=" + std::to_string(options_.page_bytes) + "B, backing=" +
         backing + ", grid=" + std::to_string(grid_.resolution()) + ")";
}

PageView PagedStore::view(const BufferManager::Pin& pin) const {
  return PageView(pin.data(), options_.page_bytes, dims_);
}

BufferManager::Pin PagedStore::alloc_page(PageId* id) {
  if (!free_pages_.empty()) {
    *id = free_pages_.back();
    free_pages_.pop_back();
  } else {
    *id = file_->allocate();
  }
  auto pin = buffer_->create(*id);
  view(pin).format();
  pin.mark_dirty();
  return pin;
}

void PagedStore::append_event(const Event& event) {
  GridFile::Chain& chain = grid_.chain(grid_.cell_of(event.values));
  if (chain.tail == kNoPage) {
    PageId pid = kNoPage;
    auto pin = alloc_page(&pid);
    view(pin).append(event);
    pin.mark_dirty();
    chain.head = chain.tail = pid;
  } else {
    auto tail_pin = buffer_->fetch(chain.tail);
    PageView tail = view(tail_pin);
    if (tail.count() < tail.capacity()) {
      tail.append(event);
      tail_pin.mark_dirty();
    } else {
      PageId pid = kNoPage;
      auto pin = alloc_page(&pid);  // tail stays pinned: 2 pins held here
      view(pin).append(event);
      pin.mark_dirty();
      tail.set_next(pid);
      tail_pin.mark_dirty();
      chain.tail = pid;
    }
  }
  ++stored_;
}

InsertReceipt PagedStore::insert(net::NodeId source, const Event& event) {
  validate_event(event);
  if (event.dims() != dims_)
    throw ConfigError("PagedStore: event dimensionality mismatch");
  append_event(event);
  InsertReceipt receipt;
  receipt.stored_at = base_station_ == net::kNoNode ? source : base_station_;
  if (network_ != nullptr && base_station_ != net::kNoNode) {
    const auto before = network_->traffic().total;
    const auto route = router_->route_to_node(source, base_station_);
    network_->transmit_path(route.path, net::MessageKind::Insert,
                            network_->sizes().event_bits(dims_));
    receipt.messages = network_->traffic().total - before;
  }
  return receipt;
}

std::vector<Event> PagedStore::matching(const RangeQuery& q) const {
  std::vector<Event> out;
  std::vector<std::size_t> cells;
  grid_.relevant_cells(q, &cells);
  for (const std::size_t cell : cells) {
    PageId cur = grid_.chain(cell).head;
    while (cur != kNoPage) {
      auto pin = buffer_->fetch(cur);
      const PageView v = view(pin);
      const std::size_t n = v.count();
      for (std::size_t slot = 0; slot < n; ++slot) {
        Event e = v.event_at(slot);
        if (q.matches(e)) out.push_back(std::move(e));
      }
      cur = v.next();
    }
  }
  // Ascending id = insertion order for generator workloads; see the
  // equivalence contract in the header.
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });
  return out;
}

QueryReceipt PagedStore::query(net::NodeId sink, const RangeQuery& q) {
  QueryReceipt receipt;
  receipt.events = matching(q);
  receipt.index_nodes_visited = 1;
  if (network_ != nullptr && base_station_ != net::kNoNode) {
    const auto before = network_->traffic();
    const auto to_bs = router_->route_to_node(sink, base_station_);
    network_->transmit_path(to_bs.path, net::MessageKind::Query,
                            network_->sizes().query_bits(dims_));
    const auto back = router_->route_to_node(base_station_, sink);
    const auto& sizes = network_->sizes();
    const std::uint64_t reply_count =
        std::max<std::uint64_t>(sizes.reply_batches(receipt.events.size()), 1);
    for (std::uint64_t i = 0; i < reply_count; ++i) {
      network_->transmit_path(
          back.path, net::MessageKind::Reply,
          sizes.reply_bits(dims_, sizes.reply_payload(receipt.events.size())));
    }
    const auto delta = network_->traffic() - before;
    receipt.cost() = cost_of(delta);
  }
  return receipt;
}

AggregateReceipt PagedStore::aggregate(net::NodeId sink, const RangeQuery& q,
                                       AggregateKind kind,
                                       std::size_t value_dim) {
  POOLNET_ASSERT(value_dim < dims_);
  AggregateReceipt receipt;
  PartialAggregate partial;
  // matching() returns ascending ids = insertion order, so the float
  // accumulation order matches BruteForceStore's linear scan bit-exactly.
  for (const Event& e : matching(q)) partial.add(e.values[value_dim]);
  receipt.result = partial.finalize(kind);
  receipt.index_nodes_visited = 1;
  if (network_ != nullptr && base_station_ != net::kNoNode) {
    const auto before = network_->traffic();
    const auto to_bs = router_->route_to_node(sink, base_station_);
    network_->transmit_path(to_bs.path, net::MessageKind::Query,
                            network_->sizes().query_bits(dims_));
    const auto back = router_->route_to_node(base_station_, sink);
    network_->transmit_path(back.path, net::MessageKind::Reply,
                            network_->sizes().aggregate_bits());
    const auto delta = network_->traffic() - before;
    receipt.cost() = cost_of(delta);
  }
  return receipt;
}

std::size_t PagedStore::expire_before(double cutoff) {
  std::size_t removed = 0;
  const std::size_t rec = event_record_bytes(dims_);
  for (std::size_t cell = 0; cell < grid_.cell_count(); ++cell) {
    GridFile::Chain& chain = grid_.chain(cell);
    BufferManager::Pin prev_pin;  // pins the predecessor for unlinking
    PageId prev = kNoPage;
    PageId cur = chain.head;
    while (cur != kNoPage) {
      auto pin = buffer_->fetch(cur);
      PageView v = view(pin);
      const std::size_t n = v.count();
      // In-place compaction: keep records with detected_at >= cutoff,
      // sliding survivors down so slot order (= insertion order within
      // the page) is preserved.
      std::size_t keep = 0;
      for (std::size_t slot = 0; slot < n; ++slot) {
        if (load_f64_le(v.record(slot) + 12) >= cutoff) {
          if (keep != slot) std::memmove(v.record(keep), v.record(slot), rec);
          ++keep;
        }
      }
      if (keep != n) {
        removed += n - keep;
        v.set_count(keep);
        pin.mark_dirty();
      }
      const PageId next = v.next();
      if (keep == 0) {
        // Unlink the emptied page and recycle it. At most two pins are
        // live here (prev_pin + pin) — the pool-of-2 floor.
        if (prev == kNoPage) {
          chain.head = next;
        } else {
          PageView pv = view(prev_pin);
          pv.set_next(next);
          prev_pin.mark_dirty();
        }
        if (chain.tail == cur) chain.tail = prev;
        pin.release();
        buffer_->discard(cur);
        free_pages_.push_back(cur);
      } else {
        prev_pin = std::move(pin);
        prev = cur;
      }
      cur = next;
    }
  }
  stored_ -= removed;
  return removed;
}

}  // namespace poolnet::storage
