#include "storage/paged/paged_store.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.h"
#include "net/network.h"
#include "routing/router.h"

namespace poolnet::storage {

namespace {

// Branch-free strided predicate over canonical page records: one bit per
// slot of (v >= lo) & (v <= hi), reading the little-endian double at `p`,
// `p + stride`, ... — the page-layout twin of the ColumnStore kernel.
std::uint64_t page_match_word(const std::uint8_t* p, std::size_t stride,
                              std::size_t rows, double lo, double hi) {
  std::uint64_t m = 0;
  for (std::size_t j = 0; j < rows; ++j) {
    const double v = load_f64_le(p + j * stride);
    m |= static_cast<std::uint64_t>((v >= lo) & (v <= hi)) << j;
  }
  return m;
}

}  // namespace

PagedStore::PagedStore(std::size_t dims, PagedStoreOptions options,
                       obs::MetricsRegistry* metrics,
                       const std::string& prefix)
    : dims_(dims),
      options_(std::move(options)),
      grid_(dims, options_.grid_resolution == 0 ? 1 : options_.grid_resolution) {
  if (dims == 0 || dims > kMaxDims)
    throw ConfigError("PagedStore: bad dimensionality");
  if (page_capacity(options_.page_bytes, dims_) == 0)
    throw ConfigError("PagedStore: page too small for even one record");
  if (options_.backing == PagedStoreOptions::Backing::File)
    file_ = std::make_unique<TempFilePageFile>(options_.page_bytes,
                                               options_.file_dir);
  else
    file_ = std::make_unique<MemPageFile>(options_.page_bytes);
  buffer_ = std::make_unique<BufferManager>(*file_, options_.pool_pages,
                                            metrics, prefix);
}

PagedStore::PagedStore(std::size_t dims, PagedStoreOptions options,
                       net::Network& network, const routing::Router& router,
                       net::NodeId sink_node, obs::MetricsRegistry* metrics,
                       const std::string& prefix)
    : PagedStore(dims, std::move(options), metrics, prefix) {
  network_ = &network;
  router_ = &router;
  base_station_ = sink_node;
}

std::string PagedStore::describe() const {
  const char* backing =
      options_.backing == PagedStoreOptions::Backing::File ? "file" : "mem";
  return "central/paged (pool=" + std::to_string(options_.pool_pages) +
         ", page=" + std::to_string(options_.page_bytes) + "B, backing=" +
         backing + ", grid=" + std::to_string(grid_.resolution()) + ")";
}

PageView PagedStore::view(const BufferManager::Pin& pin) const {
  return PageView(pin.data(), options_.page_bytes, dims_);
}

BufferManager::Pin PagedStore::alloc_page(PageId* id) {
  if (!free_pages_.empty()) {
    *id = free_pages_.back();
    free_pages_.pop_back();
  } else {
    *id = file_->allocate();
  }
  auto pin = buffer_->create(*id);
  view(pin).format();
  pin.mark_dirty();
  grid_.dir_reset(*id);
  return pin;
}

void PagedStore::append_event(const Event& event) {
  GridFile::Chain& chain = grid_.chain(grid_.cell_of(event.values));
  if (chain.tail == kNoPage) {
    PageId pid = kNoPage;
    auto pin = alloc_page(&pid);
    view(pin).append(event);
    pin.mark_dirty();
    chain.head = chain.tail = pid;
  } else {
    auto tail_pin = buffer_->fetch(chain.tail);
    PageView tail = view(tail_pin);
    if (tail.count() < tail.capacity()) {
      tail.append(event);
      tail_pin.mark_dirty();
    } else {
      PageId pid = kNoPage;
      auto pin = alloc_page(&pid);  // tail stays pinned: 2 pins held here
      view(pin).append(event);
      pin.mark_dirty();
      tail.set_next(pid);
      tail_pin.mark_dirty();
      grid_.dir_set_next(chain.tail, pid);
      chain.tail = pid;
    }
  }
  grid_.dir_zone_extend(chain.tail, event.values);
  ++stored_;
}

InsertReceipt PagedStore::insert(net::NodeId source, const Event& event) {
  validate_event(event);
  if (event.dims() != dims_)
    throw ConfigError("PagedStore: event dimensionality mismatch");
  append_event(event);
  InsertReceipt receipt;
  receipt.stored_at = base_station_ == net::kNoNode ? source : base_station_;
  if (network_ != nullptr && base_station_ != net::kNoNode) {
    const auto before = network_->traffic().total;
    const auto route = router_->route_to_node(source, base_station_);
    network_->transmit_path(route.path, net::MessageKind::Insert,
                            network_->sizes().event_bits(dims_));
    receipt.messages = network_->traffic().total - before;
  }
  return receipt;
}

std::vector<Event> PagedStore::matching(const RangeQuery& q) const {
  std::vector<Event> out;
  matching_into(q, out);
  return out;
}

void PagedStore::matching_into(const RangeQuery& q,
                               std::vector<Event>& out) const {
  const std::size_t start = out.size();
  std::vector<std::size_t> cells;
  grid_.relevant_cells(q, &cells);
  const std::size_t stride = event_record_bytes(dims_);
  const auto& bounds = q.bounds();
  for (const std::size_t cell : cells) {
    PageId cur = grid_.chain(cell).head;
    while (cur != kNoPage) {
      // The directory walks the chain and vetoes non-overlapping pages
      // up front, so a cold page the query cannot match is never
      // faulted into the pool.
      const PageId next = grid_.dir_next(cur);
      if (!grid_.dir_zone_overlaps(cur, q)) {
        ++scan_stats_.blocks_skipped;
        cur = next;
        continue;
      }
      auto pin = buffer_->fetch(cur);
      const PageView v = view(pin);
      const std::size_t n = v.count();
      scan_stats_.rows_scanned += n;
      for (std::size_t slot0 = 0; slot0 < n; slot0 += 64) {
        const std::size_t rows = std::min<std::size_t>(64, n - slot0);
        std::uint64_t word =
            rows == 64 ? ~std::uint64_t{0} : (~std::uint64_t{0} >> (64 - rows));
        const std::uint8_t* base = v.record(slot0);
        for (std::size_t d = 0; d < dims_ && word != 0; ++d) {
          word &= page_match_word(base + 20 + 8 * d, stride, rows,
                                  bounds[d].lo, bounds[d].hi);
          scan_stats_.bytes_touched += rows * sizeof(double);
        }
        while (word != 0) {
          const unsigned j = static_cast<unsigned>(std::countr_zero(word));
          word &= word - 1;
          out.push_back(v.event_at(slot0 + j));
        }
      }
      cur = next;
    }
  }
  // Ascending id = insertion order for generator workloads; see the
  // equivalence contract in the header.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });
}

void PagedStore::charge_query_traffic(net::NodeId sink,
                                      QueryReceipt& receipt) const {
  if (network_ == nullptr || base_station_ == net::kNoNode) return;
  const auto before = network_->traffic();
  const auto to_bs = router_->route_to_node(sink, base_station_);
  network_->transmit_path(to_bs.path, net::MessageKind::Query,
                          network_->sizes().query_bits(dims_));
  const auto back = router_->route_to_node(base_station_, sink);
  const auto& sizes = network_->sizes();
  const std::uint64_t reply_count =
      std::max<std::uint64_t>(sizes.reply_batches(receipt.events.size()), 1);
  for (std::uint64_t i = 0; i < reply_count; ++i) {
    network_->transmit_path(
        back.path, net::MessageKind::Reply,
        sizes.reply_bits(dims_, sizes.reply_payload(receipt.events.size())));
  }
  const auto delta = network_->traffic() - before;
  receipt.cost() = cost_of(delta);
}

void PagedStore::page_events_into(PageId page, std::vector<Event>& out) const {
  auto pin = buffer_->fetch(page);
  const PageView v = view(pin);
  const std::size_t n = v.count();
  scan_stats_.rows_scanned += n;
  scan_stats_.bytes_touched += n * event_record_bytes(dims_);
  for (std::size_t slot = 0; slot < n; ++slot) out.push_back(v.event_at(slot));
}

QueryReceipt PagedStore::query(net::NodeId sink, const RangeQuery& q) {
  QueryReceipt receipt;
  receipt.events = matching(q);
  receipt.index_nodes_visited = 1;
  charge_query_traffic(sink, receipt);
  return receipt;
}

QueryReceipt PagedStore::skyline(net::NodeId sink, const SkylineQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("PagedStore: skyline dimensionality mismatch");
  QueryReceipt receipt;
  std::vector<Event> cand, page_events;
  Values corner;
  for (std::size_t cell = 0; cell < grid_.cell_count(); ++cell) {
    PageId cur = grid_.chain(cell).head;
    while (cur != kNoPage) {
      const PageId next = grid_.dir_next(cur);
      // The directory's max corner bounds every resident record on the
      // selected subset — a dominated corner means a page of dominated
      // events, vetoed before it faults into the pool.
      const double* zmax = grid_.dir_zone_max(cur);
      corner.clear();
      for (std::size_t d = 0; d < dims_; ++d) corner.push_back(zmax[d]);
      if (!skyline_admits(q, cand, corner)) {
        ++scan_stats_.blocks_skipped;
        cur = next;
        continue;
      }
      page_events.clear();
      page_events_into(cur, page_events);
      for (Event& e : page_events)
        if (skyline_admits(q, cand, e.values)) cand.push_back(std::move(e));
      cur = next;
    }
  }
  skyline_filter(q, cand);
  receipt.events = std::move(cand);
  receipt.index_nodes_visited = 1;
  charge_query_traffic(sink, receipt);
  return receipt;
}

QueryReceipt PagedStore::k_nearest(net::NodeId sink, const KNearestQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("PagedStore: k-NN dimensionality mismatch");
  QueryReceipt receipt;
  // Order every chained page by the zone map's lower-bound distance to
  // the target; fetch in that order, stopping once the next page cannot
  // beat the k-th best (strictly — equal distance may hide a lower id).
  std::vector<std::pair<double, PageId>> order;
  for (std::size_t cell = 0; cell < grid_.cell_count(); ++cell) {
    for (PageId cur = grid_.chain(cell).head; cur != kNoPage;
         cur = grid_.dir_next(cur)) {
      const double* zmin = grid_.dir_zone_min(cur);
      const double* zmax = grid_.dir_zone_max(cur);
      double d2 = 0.0;
      for (std::size_t d = 0; d < dims_; ++d) {
        const double t = q.target[d];
        const double gap =
            t < zmin[d] ? zmin[d] - t : (t > zmax[d] ? t - zmax[d] : 0.0);
        d2 += gap * gap;
      }
      order.emplace_back(d2, cur);
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<Event> cand;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i].first > knn_kth_distance2(q, cand)) {
      scan_stats_.blocks_skipped += order.size() - i;
      break;
    }
    page_events_into(order[i].second, cand);
    knn_filter(q, cand);  // keep only the running top-k between pages
  }
  receipt.events = std::move(cand);
  receipt.rounds = 1;
  receipt.index_nodes_visited = 1;
  charge_query_traffic(sink, receipt);
  return receipt;
}

AggregateReceipt PagedStore::aggregate(net::NodeId sink, const RangeQuery& q,
                                       AggregateKind kind,
                                       std::size_t value_dim) {
  POOLNET_ASSERT(value_dim < dims_);
  AggregateReceipt receipt;
  PartialAggregate partial;
  // matching() returns ascending ids = insertion order, so the float
  // accumulation order matches BruteForceStore's linear scan bit-exactly.
  for (const Event& e : matching(q)) partial.add(e.values[value_dim]);
  receipt.result = partial.finalize(kind);
  receipt.index_nodes_visited = 1;
  if (network_ != nullptr && base_station_ != net::kNoNode) {
    const auto before = network_->traffic();
    const auto to_bs = router_->route_to_node(sink, base_station_);
    network_->transmit_path(to_bs.path, net::MessageKind::Query,
                            network_->sizes().query_bits(dims_));
    const auto back = router_->route_to_node(base_station_, sink);
    network_->transmit_path(back.path, net::MessageKind::Reply,
                            network_->sizes().aggregate_bits());
    const auto delta = network_->traffic() - before;
    receipt.cost() = cost_of(delta);
  }
  return receipt;
}

std::size_t PagedStore::expire_before(double cutoff) {
  std::size_t removed = 0;
  const std::size_t rec = event_record_bytes(dims_);
  for (std::size_t cell = 0; cell < grid_.cell_count(); ++cell) {
    GridFile::Chain& chain = grid_.chain(cell);
    BufferManager::Pin prev_pin;  // pins the predecessor for unlinking
    PageId prev = kNoPage;
    PageId cur = chain.head;
    while (cur != kNoPage) {
      auto pin = buffer_->fetch(cur);
      PageView v = view(pin);
      const std::size_t n = v.count();
      // In-place compaction: keep records with detected_at >= cutoff,
      // sliding survivors down so slot order (= insertion order within
      // the page) is preserved.
      std::size_t keep = 0;
      for (std::size_t slot = 0; slot < n; ++slot) {
        if (load_f64_le(v.record(slot) + 12) >= cutoff) {
          if (keep != slot) std::memmove(v.record(keep), v.record(slot), rec);
          ++keep;
        }
      }
      if (keep != n) {
        removed += n - keep;
        v.set_count(keep);
        pin.mark_dirty();
        // Survivor set shrank: recompute the page's zone map so the
        // directory never reports stale (over-wide) bounds.
        grid_.dir_zone_reset(cur);
        for (std::size_t slot = 0; slot < keep; ++slot) {
          Values values;
          const std::uint8_t* r = v.record(slot);
          for (std::size_t d = 0; d < dims_; ++d)
            values.push_back(load_f64_le(r + 20 + 8 * d));
          grid_.dir_zone_extend(cur, values);
        }
      }
      const PageId next = v.next();
      if (keep == 0) {
        // Unlink the emptied page and recycle it. At most two pins are
        // live here (prev_pin + pin) — the pool-of-2 floor.
        if (prev == kNoPage) {
          chain.head = next;
        } else {
          PageView pv = view(prev_pin);
          pv.set_next(next);
          prev_pin.mark_dirty();
          grid_.dir_set_next(prev, next);
        }
        if (chain.tail == cur) chain.tail = prev;
        pin.release();
        buffer_->discard(cur);
        free_pages_.push_back(cur);
      } else {
        prev_pin = std::move(pin);
        prev = cur;
      }
      cur = next;
    }
  }
  stored_ -= removed;
  return removed;
}

}  // namespace poolnet::storage
