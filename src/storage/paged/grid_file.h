// Grid-file index over the attribute space (DESIGN.md §13).
//
// The attribute domain [0,1]^k is cut into resolution^k equal cells; each
// cell owns a chain of pages holding exactly the events whose values fall
// in that cell. A range query then touches only the chains of cells its
// box overlaps — the in-core analogue of the paper's locality-preserving
// mapping, applied to the disk layout instead of the network.
//
// The index itself is tiny (two PageIds per cell); all event bytes live
// in the pages. For k > kMaxGridDims (high-dimensional events) only the
// first kMaxGridDims attributes partition the space — correctness is
// unaffected because a chain scan still filters every record against the
// full query box; only pruning selectivity degrades.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/paged/page.h"
#include "storage/range_query.h"

namespace poolnet::storage {

class GridFile {
 public:
  /// Dimensions beyond this do not partition the grid (cell count would
  /// explode as resolution^k); they are filtered at scan time instead.
  static constexpr std::size_t kMaxGridDims = 3;

  /// `resolution` cells per partitioned dimension (>= 1).
  GridFile(std::size_t dims, std::size_t resolution);

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t resolution() const { return resolution_; }

  /// Cell index owning an event with attribute values `values`.
  std::size_t cell_of(const Values& values) const;

  /// Appends (ascending) the indices of every cell whose box overlaps
  /// the query box. Don't-care dimensions are [0,1], overlapping every
  /// slice, so partial queries fall out naturally.
  void relevant_cells(const RangeQuery& q, std::vector<std::size_t>* out) const;

  struct Chain {
    PageId head = kNoPage;
    PageId tail = kNoPage;  ///< append target; kNoPage iff head is
  };

  Chain& chain(std::size_t cell) { return cells_[cell]; }
  const Chain& chain(std::size_t cell) const { return cells_[cell]; }

 private:
  /// Slice index of value `v` along one dimension: floor(v * resolution),
  /// with v = 1.0 clamped into the last slice.
  std::size_t slice_of(double v) const;

  std::size_t dims_;          ///< partitioned dims (<= kMaxGridDims)
  std::size_t resolution_;
  std::vector<Chain> cells_;  ///< row-major over the partitioned dims
};

}  // namespace poolnet::storage
