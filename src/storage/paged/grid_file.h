// Grid-file index over the attribute space (DESIGN.md §13).
//
// The attribute domain [0,1]^k is cut into resolution^k equal cells; each
// cell owns a chain of pages holding exactly the events whose values fall
// in that cell. A range query then touches only the chains of cells its
// box overlaps — the in-core analogue of the paper's locality-preserving
// mapping, applied to the disk layout instead of the network.
//
// The index itself is tiny (two PageIds per cell); all event bytes live
// in the pages. For k > kMaxGridDims (high-dimensional events) only the
// first kMaxGridDims attributes partition the space — correctness is
// unaffected because a chain scan still filters every record against the
// full query box; only pruning selectivity degrades.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/paged/page.h"
#include "storage/range_query.h"

namespace poolnet::storage {

class GridFile {
 public:
  /// Dimensions beyond this do not partition the grid (cell count would
  /// explode as resolution^k); they are filtered at scan time instead.
  static constexpr std::size_t kMaxGridDims = 3;

  /// `resolution` cells per partitioned dimension (>= 1).
  GridFile(std::size_t dims, std::size_t resolution);

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t resolution() const { return resolution_; }

  /// Cell index owning an event with attribute values `values`.
  std::size_t cell_of(const Values& values) const;

  /// Appends (ascending) the indices of every cell whose box overlaps
  /// the query box. Don't-care dimensions are [0,1], overlapping every
  /// slice, so partial queries fall out naturally.
  void relevant_cells(const RangeQuery& q, std::vector<std::size_t>* out) const;

  struct Chain {
    PageId head = kNoPage;
    PageId tail = kNoPage;  ///< append target; kNoPage iff head is
  };

  Chain& chain(std::size_t cell) { return cells_[cell]; }
  const Chain& chain(std::size_t cell) const { return cells_[cell]; }

  // --- page directory (DESIGN.md §14) ----------------------------------
  //
  // Beside the chain heads the grid file keeps one small in-core record
  // per page: a mirror of the on-page `next` pointer and a per-attribute
  // min/max zone map over ALL k dimensions (not just the partitioned
  // ones). Scans walk chains through the directory and consult the zone
  // map BEFORE fetching, so a cold page whose bounds cannot intersect the
  // query box is skipped without faulting it in. The on-page next pointer
  // stays canonical; the directory is derived state, rebuilt the same way
  // pages themselves are mutated (append / unlink / compaction).

  /// Grows the directory to cover `page` and resets its entry (empty zone
  /// map, no successor). Call when a page is formatted or recycled.
  void dir_reset(PageId page);

  /// Empties just the zone map (before recomputing it over survivors of
  /// an in-place compaction).
  void dir_zone_reset(PageId page);

  void dir_set_next(PageId page, PageId next) { dir_next_[page] = next; }
  PageId dir_next(PageId page) const { return dir_next_[page]; }

  /// Widens `page`'s zone map to cover an appended event's values.
  void dir_zone_extend(PageId page, const Values& values);

  /// False when the page's zone map proves no resident event can match
  /// `q` (an empty/reset zone map never overlaps).
  bool dir_zone_overlaps(PageId page, const RangeQuery& q) const;

  /// Raw per-attribute zone-map bounds of `page` (full event dims, the
  /// same arrays dir_zone_overlaps consults). A reset/empty entry reads
  /// min = +inf, max = -inf. Scans whose veto is not a rectangle
  /// (skyline dominance, k-NN shell distance) consult these directly.
  const double* dir_zone_min(PageId page) const {
    return &dir_zmin_[page * full_dims_];
  }
  const double* dir_zone_max(PageId page) const {
    return &dir_zmax_[page * full_dims_];
  }
  std::size_t zone_dims() const { return full_dims_; }

 private:
  /// Slice index of value `v` along one dimension: floor(v * resolution),
  /// with v = 1.0 clamped into the last slice.
  std::size_t slice_of(double v) const;

  std::size_t dims_;          ///< partitioned dims (<= kMaxGridDims)
  std::size_t full_dims_;     ///< event dims covered by page zone maps
  std::size_t resolution_;
  std::vector<Chain> cells_;  ///< row-major over the partitioned dims

  std::vector<PageId> dir_next_;   ///< per page, mirrors the on-page link
  std::vector<double> dir_zmin_;   ///< pages x full_dims
  std::vector<double> dir_zmax_;
};

}  // namespace poolnet::storage
