#include "storage/paged/page_file.h"

#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/assert.h"
#include "common/error.h"

namespace poolnet::storage {

PageFile::PageFile(std::size_t page_bytes) : page_bytes_(page_bytes) {
  if (page_bytes_ == 0) throw ConfigError("PageFile: zero page size");
}

MemPageFile::MemPageFile(std::size_t page_bytes) : PageFile(page_bytes) {}

std::uint8_t* MemPageFile::page_ptr(std::uint32_t id) {
  POOLNET_ASSERT_MSG(id < pages_, "MemPageFile: page id out of range");
  return segments_[id / kSegmentPages].get() +
         (id % kSegmentPages) * page_bytes_;
}

std::uint32_t MemPageFile::allocate() {
  if (pages_ % kSegmentPages == 0) {
    segments_.push_back(
        std::make_unique<std::uint8_t[]>(kSegmentPages * page_bytes_));
    std::memset(segments_.back().get(), 0, kSegmentPages * page_bytes_);
  }
  return static_cast<std::uint32_t>(pages_++);
}

void MemPageFile::read(std::uint32_t id, std::uint8_t* out) {
  ++reads_;
  std::memcpy(out, page_ptr(id), page_bytes_);
}

void MemPageFile::write(std::uint32_t id, const std::uint8_t* data) {
  ++writes_;
  std::memcpy(page_ptr(id), data, page_bytes_);
}

TempFilePageFile::TempFilePageFile(std::size_t page_bytes, std::string dir)
    : PageFile(page_bytes) {
#if defined(__unix__) || defined(__APPLE__)
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  std::string templ = dir + "/poolnet-paged-XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  fd_ = ::mkstemp(buf.data());
  if (fd_ < 0)
    throw ConfigError("TempFilePageFile: cannot create temp file in " + dir);
  ::unlink(buf.data());  // anonymous from here on; fd is the only handle
#else
  (void)dir;
  throw ConfigError("TempFilePageFile: file backing needs a POSIX host");
#endif
}

TempFilePageFile::~TempFilePageFile() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

std::uint32_t TempFilePageFile::allocate() {
#if defined(__unix__) || defined(__APPLE__)
  const std::uint32_t id = static_cast<std::uint32_t>(pages_++);
  // Zero-fill the new page so a read-before-first-write sees a formatted
  // blank, matching MemPageFile.
  const std::vector<std::uint8_t> zeros(page_bytes_, 0);
  const auto off = static_cast<off_t>(static_cast<std::uint64_t>(id) *
                                      page_bytes_);
  const ssize_t n = ::pwrite(fd_, zeros.data(), page_bytes_, off);
  POOLNET_ASSERT_MSG(n == static_cast<ssize_t>(page_bytes_),
                     "TempFilePageFile: short extend");
  return id;
#else
  return 0;
#endif
}

void TempFilePageFile::read(std::uint32_t id, std::uint8_t* out) {
#if defined(__unix__) || defined(__APPLE__)
  ++reads_;
  POOLNET_ASSERT_MSG(id < pages_, "TempFilePageFile: page id out of range");
  const auto off = static_cast<off_t>(static_cast<std::uint64_t>(id) *
                                      page_bytes_);
  const ssize_t n = ::pread(fd_, out, page_bytes_, off);
  POOLNET_ASSERT_MSG(n == static_cast<ssize_t>(page_bytes_),
                     "TempFilePageFile: short read");
#else
  (void)id;
  (void)out;
#endif
}

void TempFilePageFile::write(std::uint32_t id, const std::uint8_t* data) {
#if defined(__unix__) || defined(__APPLE__)
  ++writes_;
  POOLNET_ASSERT_MSG(id < pages_, "TempFilePageFile: page id out of range");
  const auto off = static_cast<off_t>(static_cast<std::uint64_t>(id) *
                                      page_bytes_);
  const ssize_t n = ::pwrite(fd_, data, page_bytes_, off);
  POOLNET_ASSERT_MSG(n == static_cast<ssize_t>(page_bytes_),
                     "TempFilePageFile: short write");
#else
  (void)id;
  (void)data;
#endif
}

}  // namespace poolnet::storage
