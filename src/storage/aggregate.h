// Aggregate queries over a value dimension (Section 3.2.3).
//
// "The aggregate operations, which are frequently seen in sensor network
// applications, can also be performed in each splitter so that the number
// of events to be sent through the path can be greatly reduced." This
// header defines the aggregate algebra: a PartialAggregate is the
// mergeable in-network summary a cell or zone computes locally; splitters
// (Pool) merge partials before anything travels to the sink.
//
// Section 4.1's tie rule matters here: because Pool stores exactly ONE
// copy of an event even when its greatest value ties across dimensions,
// SUM/COUNT/AVG aggregates are duplicate-free by construction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>

namespace poolnet::storage {

enum class AggregateKind : std::uint8_t { Count, Sum, Min, Max, Average };

const char* to_string(AggregateKind k);

/// The final scalar answer. Min/Max/Average are undefined over an empty
/// match set; `valid` is false in that case (Count/Sum report 0).
struct AggregateResult {
  double value = 0.0;
  std::uint64_t count = 0;
  bool valid = false;
};

/// Commutative, associative partial state: exactly what one storage node
/// sends upstream instead of its raw events.
struct PartialAggregate {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::uint64_t count = 0;

  void add(double v);
  void merge(const PartialAggregate& other);
  bool empty() const { return count == 0; }

  AggregateResult finalize(AggregateKind kind) const;
};

std::ostream& operator<<(std::ostream& os, const AggregateResult& r);

}  // namespace poolnet::storage
