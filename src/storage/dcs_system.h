// The common interface of data-centric storage systems.
//
// Both Pool (src/core) and DIM (src/dim) implement this, which is what
// lets the experiment driver, the tests, and the benches treat the two
// systems symmetrically — the comparison methodology of Section 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/node.h"
#include "storage/aggregate.h"
#include "storage/event.h"
#include "storage/query_request.h"
#include "storage/range_query.h"

namespace poolnet::storage {

namespace column {
struct ScanStats;
}

/// The shared message-cost triple every receipt reports: total per-hop
/// transmissions, split into forwarding legs (query + subquery) and
/// reply legs. Receipts inherit it, so the triple is defined once and
/// receipts of different operations sum with operator+=.
struct CostBreakdown {
  std::uint64_t messages = 0;        ///< total per-hop transmissions
  std::uint64_t query_messages = 0;  ///< forwarding legs (query + subquery)
  std::uint64_t reply_messages = 0;  ///< reply legs

  CostBreakdown& operator+=(const CostBreakdown& other) {
    messages += other.messages;
    query_messages += other.query_messages;
    reply_messages += other.reply_messages;
    return *this;
  }
  friend CostBreakdown operator+(CostBreakdown a, const CostBreakdown& b) {
    a += b;
    return a;
  }

  /// Explicit view of the cost triple (handy when a receipt's other
  /// fields shadow the intent at a call site).
  CostBreakdown& cost() { return *this; }
  const CostBreakdown& cost() const { return *this; }
};

/// Classifies a traffic-ledger delta into the standard breakdown:
/// everything counts toward `messages`; Query + SubQuery legs are
/// forwarding, Reply legs are replies (Insert/Control traffic appears in
/// the total only, matching the paper's accounting).
inline CostBreakdown cost_of(const net::TrafficTally& delta) {
  CostBreakdown c;
  c.messages = delta.total;
  c.query_messages = delta.of(net::MessageKind::Query) +
                     delta.of(net::MessageKind::SubQuery);
  c.reply_messages = delta.of(net::MessageKind::Reply);
  return c;
}

/// Cost breakdown of one insertion (`messages` is the only leg kind an
/// insert charges; the query/reply fields stay zero).
struct InsertReceipt : CostBreakdown {
  net::NodeId stored_at = net::kNoNode;  ///< node now holding the event
};

/// The base every query-shaped receipt shares: the cost triple plus the
/// storage-node visit count. Receipts of any class sum with operator+=
/// (cost AND visits), so engines accumulate them without knowing which
/// concrete receipt they hold.
struct ResultReceipt : CostBreakdown {
  std::size_t index_nodes_visited = 0;  ///< storage nodes that processed it

  ResultReceipt& operator+=(const ResultReceipt& other) {
    cost() += other.cost();
    index_nodes_visited += other.index_nodes_visited;
    return *this;
  }
};

/// Result and cost breakdown of one aggregate query.
struct AggregateReceipt : ResultReceipt {
  AggregateResult result;
};

/// Result and cost breakdown of one query of any class (range, skyline,
/// k-nearest — see QueryRequest and DcsSystem::execute).
struct QueryReceipt : ResultReceipt {
  std::vector<Event> events;  ///< qualifying events
  std::size_t rounds = 0;     ///< expanding-search rounds (k-NN only)
};

/// Result of one merged multi-query execution (see query_batch).
struct BatchQueryReceipt : ResultReceipt {
  /// One receipt per input query, in input order. `events` is identical
  /// (content AND order) to what a serial query() from the same sink
  /// would have returned, and `index_nodes_visited` is that query's own
  /// relevant-visit count. The per-receipt message fields stay zero in
  /// merging implementations — transport cost is shared and reported only
  /// in the batch totals below.
  std::vector<QueryReceipt> per_query;

  std::size_t serial_cell_visits = 0;  ///< Σ per-query relevant visits
  std::size_t unique_cell_visits = 0;  ///< deduped visits actually made

  /// Per-hop transmissions a serial per-query execution would have
  /// charged, minus what the merged execution charged. Exact on ideal
  /// links (computed from the hop counts of the very routes the merged
  /// walk uses); clamped at 0 under link loss, where retransmission
  /// draws make the comparison stochastic.
  std::uint64_t messages_saved = 0;
};

/// Online fault-tolerance counters. All stay zero on a fully-alive
/// network; they track the degradation a fault plan inflicts mid-run.
struct FaultStats {
  std::uint64_t failovers = 0;        ///< index re-elections / zone adoptions / re-homings
  std::uint64_t events_lost = 0;      ///< stored events destroyed with their holder
  std::uint64_t events_restored = 0;  ///< re-materialized from surviving mirrors
  std::uint64_t retries = 0;          ///< delivery retries after ack timeouts
  std::uint64_t failed_legs = 0;      ///< messages abandoned after the retry budget
};

/// A deployed DCS system bound to a Network. insert() stores a detected
/// event at the node the scheme maps it to; query() retrieves every stored
/// event matching the query and charges all forwarding and reply traffic
/// to the network ledger.
class DcsSystem {
 public:
  virtual ~DcsSystem() = default;

  virtual std::string name() const = 0;

  /// One-line, human-readable scheme summary with its deployment
  /// parameters — e.g. "Pool (l=10, alpha=5, dims=3)" — for CLI and
  /// bench banners, so callers never switch over concrete types to
  /// print a header. Defaults to name().
  virtual std::string describe() const { return name(); }

  /// Dimensionality this deployment is configured for.
  virtual std::size_t dims() const = 0;

  /// Store `event`, detected at `source`. Routing costs are charged to the
  /// network ledger and reported in the receipt.
  virtual InsertReceipt insert(net::NodeId source, const Event& event) = 0;

  /// Evaluate `query` issued at `sink`; returns qualifying events plus the
  /// message cost (forwarding + retrieval, the paper's metric).
  virtual QueryReceipt query(net::NodeId sink, const RangeQuery& query) = 0;

  /// Evaluate one request of any class (the unified entry point — call
  /// sites that don't care which class they hold route through here).
  /// Non-virtual by design: systems customize per class via the query /
  /// skyline / k_nearest virtuals, so dispatch stays in one place.
  QueryReceipt execute(net::NodeId sink, const QueryRequest& request);

  /// Skyline on the selected attribute subset: every stored event no
  /// other stored event dominates, canonically ordered by ascending id.
  /// The default floods — a full-space range query filtered at the sink
  /// — which is correct for any implementation; the built-in systems
  /// override it with distributed dominance pruning (a cell or zone whose
  /// best corner is strictly dominated by a collected event is never
  /// visited).
  virtual QueryReceipt skyline(net::NodeId sink, const SkylineQuery& query);

  /// The k stored events nearest to the query target in attribute space,
  /// ordered by (distance, id). The default floods and filters at the
  /// sink; the built-in systems override it with an expanding box search
  /// that stops once the k-th best distance is inside the covered shell.
  virtual QueryReceipt k_nearest(net::NodeId sink, const KNearestQuery& query);

  /// Evaluate several queries issued together from one sink as a single
  /// merged dissemination. Every per-query result set must be identical
  /// (content and order) to a serial query() call; only the transport may
  /// be shared. The default runs the queries serially — no sharing, so
  /// messages_saved stays 0 — which keeps third-party DcsSystem
  /// implementations correct without opting into merging.
  virtual BatchQueryReceipt query_batch(net::NodeId sink,
                                        const std::vector<RangeQuery>& queries) {
    BatchQueryReceipt batch;
    batch.per_query.reserve(queries.size());
    for (const RangeQuery& q : queries) {
      QueryReceipt r = query(sink, q);
      batch += r;  // ResultReceipt::+= folds cost and visits together
      batch.serial_cell_visits += r.index_nodes_visited;
      batch.unique_cell_visits += r.index_nodes_visited;
      batch.per_query.push_back(std::move(r));
    }
    return batch;
  }

  /// Evaluate an aggregate of attribute `value_dim` over the events
  /// matching `query` (Section 3.2.3). Storage nodes reply with mergeable
  /// partial aggregates instead of raw events; schemes with in-network
  /// merge points (Pool's splitters) collapse reply traffic further.
  virtual AggregateReceipt aggregate(net::NodeId sink, const RangeQuery& query,
                                     AggregateKind kind,
                                     std::size_t value_dim) = 0;

  /// Total events currently stored across all nodes.
  virtual std::size_t stored_count() const = 0;

  /// Data aging: every storage node locally discards events detected
  /// before `cutoff` (timer-driven and local, so it costs no messages).
  /// Returns the number of primary events removed.
  virtual std::size_t expire_before(double cutoff) = 0;

  /// Online failover: the system has learned (via exhausted ack budgets,
  /// see routing::send_reliable) that `dead` stopped responding, and must
  /// repair its index structures so the node is never addressed again —
  /// WITHOUT rebuilding the deployment. Idempotent per node. The default
  /// is a system with no fault tolerance.
  virtual void handle_node_failure(net::NodeId dead) { (void)dead; }

  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Columnar scan-kernel counters aggregated across this system's stores
  /// (rows_scanned / blocks_skipped / bytes_touched), or null for systems
  /// without columnar backing. Published at scrape time as
  /// `<system>.store.scan.*`.
  virtual const column::ScanStats* scan_stats() const { return nullptr; }

 protected:
  FaultStats fault_stats_;
};

}  // namespace poolnet::storage
