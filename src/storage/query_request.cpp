#include "storage/query_request.h"

#include <algorithm>
#include <limits>
#include <ostream>

#include "common/error.h"

namespace poolnet::storage {

const char* to_string(QueryClass c) {
  switch (c) {
    case QueryClass::Range:
      return "range";
    case QueryClass::Skyline:
      return "skyline";
    case QueryClass::KNearest:
      return "knn";
  }
  return "?";
}

SkylineQuery::SkylineQuery(std::size_t dims) {
  if (dims == 0 || dims > kMaxDims)
    throw ConfigError("SkylineQuery: bad dimensionality");
  attrs_.resize(dims, true);
}

SkylineQuery::SkylineQuery(std::size_t dims, FixedVec<bool, kMaxDims> attrs)
    : attrs_(attrs) {
  if (dims == 0 || dims > kMaxDims || attrs.size() != dims)
    throw ConfigError("SkylineQuery: bad dimensionality");
  if (attr_count() == 0)
    throw ConfigError("SkylineQuery: no attributes selected");
}

std::size_t SkylineQuery::attr_count() const {
  std::size_t n = 0;
  for (std::size_t d = 0; d < attrs_.size(); ++d) n += attrs_[d] ? 1 : 0;
  return n;
}

bool SkylineQuery::dominates(const Values& a, const Values& b) const {
  bool strict = false;
  for (std::size_t d = 0; d < attrs_.size(); ++d) {
    if (!attrs_[d]) continue;
    if (a[d] < b[d]) return false;
    if (a[d] > b[d]) strict = true;
  }
  return strict;
}

double squared_distance(const Values& target, const Values& values) {
  double d2 = 0.0;
  for (std::size_t d = 0; d < target.size(); ++d) {
    const double diff = target[d] - values[d];
    d2 += diff * diff;
  }
  return d2;
}

std::size_t QueryRequest::dims() const {
  switch (cls()) {
    case QueryClass::Range:
      return range().dims();
    case QueryClass::Skyline:
      return skyline().dims();
    case QueryClass::KNearest:
      return k_nearest().dims();
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const QueryRequest& r) {
  switch (r.cls()) {
    case QueryClass::Range:
      return os << r.range();
    case QueryClass::Skyline: {
      os << "skyline on {";
      bool first = true;
      for (std::size_t d = 0; d < r.skyline().dims(); ++d) {
        if (!r.skyline().on(d)) continue;
        os << (first ? "" : ",") << 'a' << d;
        first = false;
      }
      return os << '}';
    }
    case QueryClass::KNearest: {
      os << "nearest " << r.k_nearest().k << " to (";
      for (std::size_t d = 0; d < r.k_nearest().dims(); ++d)
        os << (d ? "," : "") << r.k_nearest().target[d];
      return os << ')';
    }
  }
  return os;
}

void skyline_filter(const SkylineQuery& q, std::vector<Event>& candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });
  std::vector<Event> keep;
  keep.reserve(candidates.size());
  for (const Event& e : candidates) {
    bool dominated = false;
    for (const Event& other : candidates) {
      if (q.dominates(other.values, e.values)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) keep.push_back(e);
  }
  candidates.swap(keep);
}

bool skyline_admits(const SkylineQuery& q, const std::vector<Event>& collected,
                    const Values& values) {
  for (const Event& e : collected)
    if (q.dominates(e.values, values)) return false;
  return true;
}

void knn_filter(const KNearestQuery& q, std::vector<Event>& candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [&](const Event& a, const Event& b) {
              const double da = squared_distance(q.target, a.values);
              const double db = squared_distance(q.target, b.values);
              if (da != db) return da < db;
              return a.id < b.id;
            });
  // Distributed collection can hand the same event to the sink twice
  // (mirrors, overlapping shells); keep the first of each id.
  std::vector<Event> keep;
  keep.reserve(std::min(candidates.size(), q.k));
  for (const Event& e : candidates) {
    if (keep.size() == q.k) break;
    bool dup = false;
    for (const Event& k : keep)
      if (k.id == e.id) {
        dup = true;
        break;
      }
    if (!dup) keep.push_back(e);
  }
  candidates.swap(keep);
}

double knn_kth_distance2(const KNearestQuery& q,
                         const std::vector<Event>& candidates) {
  if (q.k == 0)  // degenerate: nothing wanted, everything prunable
    return -std::numeric_limits<double>::infinity();
  if (candidates.size() < q.k)
    return std::numeric_limits<double>::infinity();
  return squared_distance(q.target, candidates[q.k - 1].values);
}

RangeQuery full_space_query(std::size_t dims) {
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < dims; ++d)
    bounds.push_back(ClosedInterval{0.0, 1.0});
  return RangeQuery(bounds);
}

RangeQuery box_around(const Values& target, double radius) {
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < target.size(); ++d) {
    bounds.push_back(ClosedInterval{std::max(0.0, target[d] - radius),
                                    std::min(1.0, target[d] + radius)});
  }
  return RangeQuery(bounds);
}

}  // namespace poolnet::storage
