// Centralized reference store.
//
// Not a sensornet scheme — an oracle that holds every event in one place
// and answers queries by linear scan. Tests compare Pool's and DIM's
// result sets against it; it also implements DcsSystem with a naive
// "flood to the sink" cost model so benches can show why centralized
// collection is hopeless (the motivation in the paper's introduction).
#pragma once

#include <vector>

#include "storage/column/column_store.h"
#include "storage/dcs_system.h"

namespace poolnet::net {
class Network;
}

namespace poolnet::routing {
class Router;
}

namespace poolnet::storage {

class BruteForceStore final : public DcsSystem {
 public:
  /// Pure-oracle construction: no network, zero message costs.
  explicit BruteForceStore(std::size_t dims);

  /// Networked construction: events are shipped to `sink_node` (external
  /// storage / base station) at insert time; queries are answered there.
  BruteForceStore(std::size_t dims, net::Network& network,
                  const routing::Router& router, net::NodeId sink_node);

  std::string name() const override { return "central"; }
  std::size_t dims() const override { return dims_; }
  InsertReceipt insert(net::NodeId source, const Event& event) override;
  QueryReceipt query(net::NodeId sink, const RangeQuery& query) override;
  /// Skyline with block-level dominance pruning: a block whose zone-map
  /// max corner is dominated by a collected event is never scanned.
  QueryReceipt skyline(net::NodeId sink, const SkylineQuery& query) override;
  /// k-NN scanning blocks in min-distance order, stopping once the next
  /// block cannot beat the k-th best.
  QueryReceipt k_nearest(net::NodeId sink,
                         const KNearestQuery& query) override;
  AggregateReceipt aggregate(net::NodeId sink, const RangeQuery& query,
                             AggregateKind kind,
                             std::size_t value_dim) override;
  std::size_t stored_count() const override { return store_.size(); }
  std::size_t expire_before(double cutoff) override;
  const column::ScanStats* scan_stats() const override { return &scan_stats_; }

  /// Oracle aggregate (no costs) — the reference for every system's tests.
  AggregateResult aggregate_oracle(const RangeQuery& q, AggregateKind kind,
                                   std::size_t value_dim) const;

  /// Scratch-buffer variant: accumulates the matching values of
  /// `value_dim` into `partial` without materializing any event.
  void aggregate_into(const RangeQuery& q, std::size_t value_dim,
                      PartialAggregate& partial) const;

  /// All events matching `q` (oracle answer, no costs).
  std::vector<Event> matching(const RangeQuery& q) const;

  /// Scratch-buffer variant: appends matches to `out` (caller clears).
  void matching_into(const RangeQuery& q, std::vector<Event>& out) const;

  /// Every stored event in insertion order. Materialized lazily from the
  /// column store and cached; the reference stays stable until the next
  /// insert/expire.
  const std::vector<Event>& all() const;

 private:
  /// Charges the sink->base-station query leg and the packed reply legs
  /// for `receipt.events` (the cost model query() always used); no-op in
  /// pure-oracle mode.
  void charge_query_traffic(net::NodeId sink, QueryReceipt& receipt) const;

  std::size_t dims_;
  column::ColumnStore store_{1};
  mutable column::ScanStats scan_stats_;
  mutable std::vector<Event> all_cache_;
  mutable bool all_dirty_ = true;
  net::Network* network_ = nullptr;        // null in oracle mode
  const routing::Router* router_ = nullptr;  // null in oracle mode
  net::NodeId base_station_ = net::kNoNode;
};

}  // namespace poolnet::storage
