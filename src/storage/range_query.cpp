#include "storage/range_query.h"

#include <ostream>

#include "common/error.h"

namespace poolnet::storage {

const char* to_string(QueryType t) {
  switch (t) {
    case QueryType::ExactMatchPoint: return "exact-match point";
    case QueryType::PartialMatchPoint: return "partial-match point";
    case QueryType::ExactMatchRange: return "exact-match range";
    case QueryType::PartialMatchRange: return "partial-match range";
  }
  return "?";
}

RangeQuery::RangeQuery(Bounds bounds) : bounds_(bounds) {
  if (bounds_.empty()) throw ConfigError("query has no dimensions");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const auto b = bounds_[i];
    if (b.empty() || b.lo < 0.0 || b.hi > 1.0)
      throw ConfigError("query bound outside [0,1] or empty");
    specified_.push_back(true);
  }
}

RangeQuery::RangeQuery(Bounds bounds, FixedVec<bool, kMaxDims> specified)
    : bounds_(bounds), specified_(specified) {
  if (bounds_.empty()) throw ConfigError("query has no dimensions");
  if (specified_.size() != bounds_.size())
    throw ConfigError("specified mask size != bounds size");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!specified_[i]) {
      bounds_[i] = {0.0, 1.0};  // the paper's rewriting rule
    } else {
      const auto b = bounds_[i];
      if (b.empty() || b.lo < 0.0 || b.hi > 1.0)
        throw ConfigError("query bound outside [0,1] or empty");
    }
  }
}

ClosedInterval RangeQuery::bound(std::size_t dim) const {
  POOLNET_ASSERT(dim < bounds_.size());
  return bounds_[dim];
}

bool RangeQuery::specified(std::size_t dim) const {
  POOLNET_ASSERT(dim < specified_.size());
  return specified_[dim];
}

std::size_t RangeQuery::specified_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < specified_.size(); ++i)
    if (specified_[i]) ++n;
  return n;
}

QueryType RangeQuery::type() const {
  bool all_points = true;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (specified_[i] && bounds_[i].lo != bounds_[i].hi) all_points = false;
  }
  const bool partial = specified_count() < dims();
  if (partial)
    return all_points ? QueryType::PartialMatchPoint
                      : QueryType::PartialMatchRange;
  return all_points ? QueryType::ExactMatchPoint : QueryType::ExactMatchRange;
}

bool RangeQuery::matches(const Event& e) const {
  if (e.dims() != dims()) return false;
  for (std::size_t i = 0; i < dims(); ++i) {
    if (!bounds_[i].contains(e.values[i])) return false;
  }
  return true;
}

double RangeQuery::volume() const {
  double v = 1.0;
  for (std::size_t i = 0; i < dims(); ++i) v *= bounds_[i].length();
  return v;
}

std::ostream& operator<<(std::ostream& os, const RangeQuery& q) {
  os << '<';
  for (std::size_t i = 0; i < q.dims(); ++i) {
    if (i) os << ", ";
    if (!q.specified(i))
      os << '*';
    else
      os << q.bound(i);
  }
  return os << '>';
}

}  // namespace poolnet::storage
