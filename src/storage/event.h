// Multi-dimensional sensor events (Section 2 of the paper).
//
// An event is a tuple <V1..Vk> of normalized attribute values in [0, 1]
// (temperature, humidity, light, ...). k is small; values live inline.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "common/fixed_vec.h"
#include "net/node.h"

namespace poolnet::storage {

/// Upper bound on event dimensionality supported without heap allocation.
/// The paper evaluates k = 3; real multi-sensor boards top out well below 8.
inline constexpr std::size_t kMaxDims = 8;

using Values = FixedVec<double, kMaxDims>;

struct Event {
  /// Unique per workload; lets tests compare result sets exactly.
  std::uint64_t id = 0;

  /// Node that detected the event.
  net::NodeId source = net::kNoNode;

  /// Attribute values, each in [0, 1].
  Values values;

  /// Simulation time of detection, seconds. Drives data aging
  /// (DcsSystem::expire_before); 0 for untimed workloads.
  double detected_at = 0.0;

  std::size_t dims() const { return values.size(); }

  /// Index of the dimension with the i-th greatest value (0-based rank):
  /// rank 0 is the paper's d^1 (greatest), rank 1 is d^2, etc. Ties are
  /// broken toward the lower dimension index, matching the convention that
  /// any maximal dimension is an admissible d^1 (Section 4.1 handles ties
  /// explicitly at the storage layer).
  std::size_t ranked_dim(std::size_t rank) const;

  /// All dimension indices attaining the maximum value (Section 4.1).
  FixedVec<std::size_t, kMaxDims> max_dims() const;

  friend bool operator==(const Event& a, const Event& b) {
    return a.id == b.id && a.source == b.source && a.values == b.values;
  }
};

std::ostream& operator<<(std::ostream& os, const Event& e);

/// Validates every value is within [0, 1]; throws ConfigError otherwise.
void validate_event(const Event& e);

}  // namespace poolnet::storage
