// The unified query surface: Range | Skyline | KNearest (DESIGN.md §15).
//
// The paper's engine answers rectangle queries only, but its relevant-cell
// machinery (Theorem 3.2) prunes any query whose answer can veto regions of
// attribute space: a skyline query never visits a cell whose best corner is
// already dominated, and a k-NN query stops expanding once the k-th best
// distance is inside the searched shell. Rather than grow one virtual per
// class on DcsSystem forever, every class is a case of one QueryRequest
// variant dispatched through DcsSystem::execute().
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <variant>
#include <vector>

#include "common/fixed_vec.h"
#include "storage/event.h"
#include "storage/range_query.h"

namespace poolnet::storage {

/// The query classes the unified surface answers.
enum class QueryClass : std::uint8_t { Range, Skyline, KNearest };

const char* to_string(QueryClass c);

/// Skyline query over a chosen attribute subset, maximizing convention:
/// `a` dominates `b` iff a >= b on every selected attribute and a > b on
/// at least one. The answer is every stored event no other stored event
/// dominates. Ties (equal on every selected attribute) are mutually
/// non-dominated — both belong to the skyline.
class SkylineQuery {
 public:
  /// Skyline on all `dims` attributes.
  explicit SkylineQuery(std::size_t dims);

  /// Skyline on the attribute subset with `attrs[i] == true`. At least
  /// one attribute must be selected; throws ConfigError otherwise.
  SkylineQuery(std::size_t dims, FixedVec<bool, kMaxDims> attrs);

  std::size_t dims() const { return attrs_.size(); }
  bool on(std::size_t dim) const { return attrs_[dim]; }
  std::size_t attr_count() const;
  const FixedVec<bool, kMaxDims>& attrs() const { return attrs_; }

  /// True when `a` dominates `b` on the selected subset (strictly better
  /// somewhere, never worse anywhere).
  bool dominates(const Values& a, const Values& b) const;

  friend bool operator==(const SkylineQuery& a, const SkylineQuery& b) {
    return a.attrs_ == b.attrs_;
  }

 private:
  FixedVec<bool, kMaxDims> attrs_;
};

/// k-nearest-event query: the k stored events closest to `target` in
/// attribute space (Euclidean). Generalizes the PR-0 nearest_monitor
/// entry point (k = 1, monitors) to stored events.
struct KNearestQuery {
  Values target;       ///< query point, each coordinate in [0, 1]
  std::size_t k = 1;   ///< how many neighbors to return

  /// First half-width of the expanding search box; 0 picks the system
  /// default. A schedule knob only — the answer never depends on it.
  double initial_radius = 0.0;

  std::size_t dims() const { return target.size(); }

  friend bool operator==(const KNearestQuery& a, const KNearestQuery& b) {
    return a.target == b.target && a.k == b.k &&
           a.initial_radius == b.initial_radius;
  }
};

/// Squared Euclidean distance between a query target and event values,
/// accumulated in dimension order. Every system computes candidate
/// distances through this one function so float rounding is identical
/// everywhere and k-NN results stay byte-comparable.
double squared_distance(const Values& target, const Values& values);

/// One query of any class. Converting constructors keep call sites that
/// pass a plain RangeQuery compiling unchanged.
class QueryRequest {
 public:
  QueryRequest(RangeQuery q) : req_(std::move(q)) {}          // NOLINT
  QueryRequest(SkylineQuery q) : req_(std::move(q)) {}        // NOLINT
  QueryRequest(KNearestQuery q) : req_(std::move(q)) {}       // NOLINT

  QueryClass cls() const {
    return static_cast<QueryClass>(req_.index());
  }
  std::size_t dims() const;

  const RangeQuery& range() const { return std::get<RangeQuery>(req_); }
  const SkylineQuery& skyline() const { return std::get<SkylineQuery>(req_); }
  const KNearestQuery& k_nearest() const {
    return std::get<KNearestQuery>(req_);
  }

  friend bool operator==(const QueryRequest& a, const QueryRequest& b) {
    return a.req_ == b.req_;
  }

 private:
  std::variant<RangeQuery, SkylineQuery, KNearestQuery> req_;
};

std::ostream& operator<<(std::ostream& os, const QueryRequest& r);

// ---- Canonical reference algorithms -----------------------------------
//
// Every system reduces its distributed answer to these local kernels at
// the sink, so cross-system results are byte-identical by construction.

/// Filters `candidates` down to its skyline, canonically ordered by
/// ascending event id. O(n * skyline) pairwise scan — candidates at the
/// sink are already reduced by distributed pruning.
void skyline_filter(const SkylineQuery& q, std::vector<Event>& candidates);

/// True when no event in `collected` dominates `values`.
bool skyline_admits(const SkylineQuery& q, const std::vector<Event>& collected,
                    const Values& values);

/// Reduces `candidates` to the k nearest to `q.target`, ordered by
/// (squared distance, id) ascending — nearest first, deterministic ties.
void knn_filter(const KNearestQuery& q, std::vector<Event>& candidates);

/// The squared distance of the current k-th best in a knn_filter-ordered
/// candidate list, or +infinity while fewer than k are held. The search
/// may stop expanding once this is <= the covered shell radius squared.
double knn_kth_distance2(const KNearestQuery& q,
                         const std::vector<Event>& candidates);

/// The full-space rectangle ([0,1] per dimension) — the flood baseline
/// every class falls back to on systems without a pruning override.
RangeQuery full_space_query(std::size_t dims);

/// A centered box query of half-width `radius` around `target`, clamped
/// to [0,1] per dimension: one shell of the expanding k-NN search.
RangeQuery box_around(const Values& target, double radius);

}  // namespace poolnet::storage
