#include "storage/dcs_system.h"

namespace poolnet::storage {

QueryReceipt DcsSystem::execute(net::NodeId sink, const QueryRequest& request) {
  switch (request.cls()) {
    case QueryClass::Range:
      return query(sink, request.range());
    case QueryClass::Skyline:
      return skyline(sink, request.skyline());
    case QueryClass::KNearest:
      return k_nearest(sink, request.k_nearest());
  }
  return {};
}

QueryReceipt DcsSystem::skyline(net::NodeId sink, const SkylineQuery& q) {
  // Flood baseline: fetch everything, filter at the sink (local, free).
  QueryReceipt receipt = query(sink, full_space_query(q.dims()));
  skyline_filter(q, receipt.events);
  return receipt;
}

QueryReceipt DcsSystem::k_nearest(net::NodeId sink, const KNearestQuery& q) {
  QueryReceipt receipt = query(sink, full_space_query(q.dims()));
  knn_filter(q, receipt.events);
  receipt.rounds = 1;
  return receipt;
}

}  // namespace poolnet::storage
