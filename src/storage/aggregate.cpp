#include "storage/aggregate.h"

#include <algorithm>
#include <ostream>

namespace poolnet::storage {

const char* to_string(AggregateKind k) {
  switch (k) {
    case AggregateKind::Count: return "COUNT";
    case AggregateKind::Sum: return "SUM";
    case AggregateKind::Min: return "MIN";
    case AggregateKind::Max: return "MAX";
    case AggregateKind::Average: return "AVG";
  }
  return "?";
}

void PartialAggregate::add(double v) {
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++count;
}

void PartialAggregate::merge(const PartialAggregate& other) {
  if (other.count == 0) return;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
}

AggregateResult PartialAggregate::finalize(AggregateKind kind) const {
  AggregateResult r;
  r.count = count;
  switch (kind) {
    case AggregateKind::Count:
      r.value = static_cast<double>(count);
      r.valid = true;
      break;
    case AggregateKind::Sum:
      r.value = sum;
      r.valid = true;
      break;
    case AggregateKind::Min:
      r.value = count ? min : 0.0;
      r.valid = count > 0;
      break;
    case AggregateKind::Max:
      r.value = count ? max : 0.0;
      r.valid = count > 0;
      break;
    case AggregateKind::Average:
      r.value = count ? sum / static_cast<double>(count) : 0.0;
      r.valid = count > 0;
      break;
  }
  return r;
}

std::ostream& operator<<(std::ostream& os, const AggregateResult& r) {
  if (!r.valid) return os << "(empty)";
  return os << r.value << " over " << r.count << " events";
}

}  // namespace poolnet::storage
