// Multi-dimensional range queries (Section 2 of the paper).
//
// A query is <[L1,U1] .. [Lk,Uk]> over the k event attributes. Unspecified
// ("don't care", the paper's '*') attributes are represented — as the paper
// prescribes — by rewriting them to the full range [0, 1]; the original
// specification mask is retained so the four query types of Section 2 can
// still be distinguished.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "common/fixed_vec.h"
#include "common/interval.h"
#include "storage/event.h"

namespace poolnet::storage {

/// The paper's four query categories.
enum class QueryType : std::uint8_t {
  ExactMatchPoint,    ///< h = k, Li = Ui for all i
  PartialMatchPoint,  ///< h < k, Li = Ui for specified i
  ExactMatchRange,    ///< h = k, Li <= Ui
  PartialMatchRange,  ///< h < k, Li < Ui for specified i
};

const char* to_string(QueryType t);

class RangeQuery {
 public:
  using Bounds = FixedVec<ClosedInterval, kMaxDims>;

  /// Fully specified query: one closed interval per dimension.
  explicit RangeQuery(Bounds bounds);

  /// Partial query: `specified[i] == false` marks a don't-care dimension,
  /// rewritten internally to [0, 1]. `bounds[i]` is ignored for those.
  RangeQuery(Bounds bounds, FixedVec<bool, kMaxDims> specified);

  std::size_t dims() const { return bounds_.size(); }
  ClosedInterval bound(std::size_t dim) const;
  const Bounds& bounds() const { return bounds_; }

  bool specified(std::size_t dim) const;
  std::size_t specified_count() const;
  /// Number of unspecified dimensions — the paper's m in "m-partial".
  std::size_t partial_count() const { return dims() - specified_count(); }

  QueryType type() const;

  /// True when `e` satisfies every bound (Section 2's answer predicate).
  bool matches(const Event& e) const;

  /// Hyper-volume of the query box (diagnostic for selectivity reports).
  double volume() const;

  friend bool operator==(const RangeQuery& a, const RangeQuery& b) {
    return a.bounds_ == b.bounds_ && a.specified_ == b.specified_;
  }

 private:
  Bounds bounds_;
  FixedVec<bool, kMaxDims> specified_;
};

std::ostream& operator<<(std::ostream& os, const RangeQuery& q);

}  // namespace poolnet::storage
