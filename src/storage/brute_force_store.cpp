#include "storage/brute_force_store.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "net/network.h"
#include "routing/router.h"

namespace poolnet::storage {

BruteForceStore::BruteForceStore(std::size_t dims) : dims_(dims) {
  if (dims == 0 || dims > kMaxDims)
    throw ConfigError("BruteForceStore: bad dimensionality");
  store_ = column::ColumnStore(dims);
  store_.set_stats(&scan_stats_);
}

BruteForceStore::BruteForceStore(std::size_t dims, net::Network& network,
                                 const routing::Router& router,
                                 net::NodeId sink_node)
    : BruteForceStore(dims) {
  network_ = &network;
  router_ = &router;
  base_station_ = sink_node;
}

InsertReceipt BruteForceStore::insert(net::NodeId source, const Event& event) {
  validate_event(event);
  if (event.dims() != dims_)
    throw ConfigError("BruteForceStore: event dimensionality mismatch");
  store_.append(event);
  all_dirty_ = true;
  InsertReceipt receipt;
  receipt.stored_at = base_station_ == net::kNoNode ? source : base_station_;
  if (network_ != nullptr && base_station_ != net::kNoNode) {
    const auto before = network_->traffic().total;
    const auto route = router_->route_to_node(source, base_station_);
    network_->transmit_path(route.path, net::MessageKind::Insert,
                            network_->sizes().event_bits(dims_));
    receipt.messages = network_->traffic().total - before;
  }
  return receipt;
}

void BruteForceStore::charge_query_traffic(net::NodeId sink,
                                           QueryReceipt& receipt) const {
  if (network_ == nullptr || base_station_ == net::kNoNode) return;
  const auto before = network_->traffic();
  // Query travels to the base station; replies come back packed.
  const auto to_bs = router_->route_to_node(sink, base_station_);
  network_->transmit_path(to_bs.path, net::MessageKind::Query,
                          network_->sizes().query_bits(dims_));
  const auto back = router_->route_to_node(base_station_, sink);
  const auto& sizes = network_->sizes();
  const std::uint64_t reply_count =
      std::max<std::uint64_t>(sizes.reply_batches(receipt.events.size()), 1);
  for (std::uint64_t i = 0; i < reply_count; ++i) {
    network_->transmit_path(
        back.path, net::MessageKind::Reply,
        sizes.reply_bits(dims_, sizes.reply_payload(receipt.events.size())));
  }
  const auto delta = network_->traffic() - before;
  receipt.cost() = cost_of(delta);
}

QueryReceipt BruteForceStore::query(net::NodeId sink, const RangeQuery& q) {
  QueryReceipt receipt;
  receipt.events = matching(q);
  receipt.index_nodes_visited = 1;
  charge_query_traffic(sink, receipt);
  return receipt;
}

QueryReceipt BruteForceStore::skyline(net::NodeId sink, const SkylineQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("BruteForceStore: skyline dimensionality mismatch");
  QueryReceipt receipt;
  std::vector<Event> cand;
  Values corner;
  const std::size_t blocks = store_.block_count();
  for (std::size_t b = 0; b < blocks; ++b) {
    // A block whose per-attribute maxima are dominated by a collected
    // event holds only dominated rows (every row is <= the corner on the
    // selected subset, and the dominator beats the corner strictly
    // somewhere) — skip it without touching its columns.
    const double* zmax = store_.block_max(b);
    corner.clear();
    for (std::size_t d = 0; d < dims_; ++d) corner.push_back(zmax[d]);
    if (!skyline_admits(q, cand, corner)) {
      ++scan_stats_.blocks_skipped;
      continue;
    }
    const std::size_t base = b * column::kBlockRows;
    const std::size_t rows = store_.block_rows(b);
    scan_stats_.rows_scanned += rows;
    scan_stats_.bytes_touched += rows * dims_ * sizeof(double);
    for (std::size_t r = base; r < base + rows; ++r) {
      Event e = store_.event_at(r);
      if (skyline_admits(q, cand, e.values)) cand.push_back(std::move(e));
    }
  }
  skyline_filter(q, cand);
  receipt.events = std::move(cand);
  receipt.index_nodes_visited = 1;
  charge_query_traffic(sink, receipt);
  return receipt;
}

QueryReceipt BruteForceStore::k_nearest(net::NodeId sink,
                                        const KNearestQuery& q) {
  if (q.dims() != dims_)
    throw ConfigError("BruteForceStore: k-NN dimensionality mismatch");
  QueryReceipt receipt;
  std::vector<Event> cand;
  // Visit blocks in order of their zone-map lower-bound distance to the
  // target; stop once the next block cannot beat the current k-th best
  // (strictly — an equal-distance block may still hold a lower-id tie).
  const std::size_t blocks = store_.block_count();
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* zmin = store_.block_min(b);
    const double* zmax = store_.block_max(b);
    double d2 = 0.0;
    for (std::size_t d = 0; d < dims_; ++d) {
      const double t = q.target[d];
      const double gap = t < zmin[d] ? zmin[d] - t : (t > zmax[d] ? t - zmax[d] : 0.0);
      d2 += gap * gap;
    }
    order.emplace_back(d2, b);
  }
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i].first > knn_kth_distance2(q, cand)) {
      scan_stats_.blocks_skipped += order.size() - i;
      break;
    }
    const std::size_t b = order[i].second;
    const std::size_t base = b * column::kBlockRows;
    const std::size_t rows = store_.block_rows(b);
    scan_stats_.rows_scanned += rows;
    scan_stats_.bytes_touched += rows * dims_ * sizeof(double);
    for (std::size_t r = base; r < base + rows; ++r)
      cand.push_back(store_.event_at(r));
    knn_filter(q, cand);  // keep only the running top-k between blocks
  }
  receipt.events = std::move(cand);
  receipt.rounds = 1;
  receipt.index_nodes_visited = 1;
  charge_query_traffic(sink, receipt);
  return receipt;
}

AggregateResult BruteForceStore::aggregate_oracle(const RangeQuery& q,
                                                  AggregateKind kind,
                                                  std::size_t value_dim) const {
  PartialAggregate partial;
  aggregate_into(q, value_dim, partial);
  return partial.finalize(kind);
}

void BruteForceStore::aggregate_into(const RangeQuery& q,
                                     std::size_t value_dim,
                                     PartialAggregate& partial) const {
  POOLNET_ASSERT(value_dim < dims_);
  store_.scan(q, false, [&](std::size_t row) {
    partial.add(store_.value_at(row, value_dim));
  });
}

AggregateReceipt BruteForceStore::aggregate(net::NodeId sink,
                                            const RangeQuery& q,
                                            AggregateKind kind,
                                            std::size_t value_dim) {
  AggregateReceipt receipt;
  receipt.result = aggregate_oracle(q, kind, value_dim);
  receipt.index_nodes_visited = 1;
  if (network_ != nullptr && base_station_ != net::kNoNode) {
    const auto before = network_->traffic();
    const auto to_bs = router_->route_to_node(sink, base_station_);
    network_->transmit_path(to_bs.path, net::MessageKind::Query,
                            network_->sizes().query_bits(dims_));
    const auto back = router_->route_to_node(base_station_, sink);
    network_->transmit_path(back.path, net::MessageKind::Reply,
                            network_->sizes().aggregate_bits());
    const auto delta = network_->traffic() - before;
    receipt.cost() = cost_of(delta);
  }
  return receipt;
}

std::size_t BruteForceStore::expire_before(double cutoff) {
  const std::size_t removed = store_.expire_before(cutoff);
  if (removed != 0) all_dirty_ = true;
  return removed;
}

std::vector<Event> BruteForceStore::matching(const RangeQuery& q) const {
  std::vector<Event> out;
  matching_into(q, out);
  return out;
}

void BruteForceStore::matching_into(const RangeQuery& q,
                                    std::vector<Event>& out) const {
  store_.matching_into(q, out);
}

const std::vector<Event>& BruteForceStore::all() const {
  if (all_dirty_) {
    all_cache_.clear();
    all_cache_.reserve(store_.size());
    store_.for_each(
        [&](std::size_t row) { all_cache_.push_back(store_.event_at(row)); });
    all_dirty_ = false;
  }
  return all_cache_;
}

}  // namespace poolnet::storage
