// Selection of the central store's engine: the flat in-memory oracle
// (BruteForceStore) or the paged out-of-core store (PagedStore), chosen
// by the shared --store option every frontend parses through here.
#pragma once

#include <memory>
#include <string>

#include "net/node.h"
#include "storage/paged/paged_store.h"

namespace poolnet::net {
class Network;
}

namespace poolnet::routing {
class Router;
}

namespace poolnet::obs {
class MetricsRegistry;
}

namespace poolnet::storage {

class DcsSystem;

enum class StoreKind { Flat, Paged };

struct StoreConfig {
  StoreKind kind = StoreKind::Flat;
  PagedStoreOptions paged;  ///< used when kind == Paged
};

/// Parses a --store spec:
///   "flat"                                  the in-memory vector store
///   "paged"                                 paged store, default knobs
///   "paged:<pages>:<page-kb>"               pool frames + page size
///   "paged:<pages>:<page-kb>:<mem|file>"    plus the backing PageFile
/// Returns false and sets `error` on a malformed spec; on failure
/// `config` is untouched.
bool parse_store_spec(const std::string& spec, StoreConfig* config,
                      std::string* error);

/// Canonical spec string that parses back to `config` (banners, tests).
std::string to_spec(const StoreConfig& config);

/// Builds the central store `config` selects. With a network/router the
/// store runs in networked mode against `sink_node`; pass nullptrs for
/// the pure oracle. `metrics` (optional) receives the pager counters
/// under "store.pager.*" for paged stores.
std::unique_ptr<DcsSystem> make_central_store(
    std::size_t dims, const StoreConfig& config, net::Network* network,
    const routing::Router* router, net::NodeId sink_node,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace poolnet::storage
