#include "storage/event.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <ostream>

#include "common/error.h"

namespace poolnet::storage {

std::size_t Event::ranked_dim(std::size_t rank) const {
  POOLNET_ASSERT(rank < dims());
  std::array<std::size_t, kMaxDims> idx{};
  std::iota(idx.begin(), idx.begin() + dims(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.begin() + dims(),
                   [&](std::size_t a, std::size_t b) {
                     return values[a] > values[b];
                   });
  return idx[rank];
}

FixedVec<std::size_t, kMaxDims> Event::max_dims() const {
  POOLNET_ASSERT(dims() > 0);
  double mx = values[0];
  for (std::size_t i = 1; i < dims(); ++i) mx = std::max(mx, values[i]);
  FixedVec<std::size_t, kMaxDims> out;
  for (std::size_t i = 0; i < dims(); ++i)
    if (values[i] == mx) out.push_back(i);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  os << "Event#" << e.id << '<';
  for (std::size_t i = 0; i < e.dims(); ++i) {
    if (i) os << ", ";
    os << e.values[i];
  }
  return os << '>';
}

void validate_event(const Event& e) {
  if (e.dims() == 0) throw ConfigError("event has no attributes");
  for (std::size_t i = 0; i < e.dims(); ++i) {
    if (!(e.values[i] >= 0.0 && e.values[i] <= 1.0))
      throw ConfigError("event attribute outside [0,1]");
  }
}

}  // namespace poolnet::storage
