#include "storage/column/column_store.h"

namespace poolnet::storage::column {

void ColumnStore::filter_column(const double* col, std::size_t rows,
                                double lo, double hi, std::uint64_t* words,
                                std::uint64_t* any) {
  const std::size_t full = rows / 64;
  std::uint64_t alive = 0;
  for (std::size_t w = 0; w < full; ++w) {
    const double* p = col + w * 64;
    std::uint64_t m = 0;
    for (unsigned j = 0; j < 64; ++j) {
      m |= static_cast<std::uint64_t>((p[j] >= lo) & (p[j] <= hi)) << j;
    }
    words[w] &= m;
    alive |= words[w];
  }
  if (const std::size_t tail = rows % 64; tail != 0) {
    const double* p = col + full * 64;
    std::uint64_t m = 0;
    for (unsigned j = 0; j < tail; ++j) {
      m |= static_cast<std::uint64_t>((p[j] >= lo) & (p[j] <= hi)) << j;
    }
    words[full] &= m;
    alive |= words[full];
  }
  *any = alive;
}

void ColumnStore::filter_primaries(const std::uint8_t* replica,
                                   std::size_t rows, std::uint64_t* words,
                                   std::uint64_t* any) {
  const std::size_t full = rows / 64;
  std::uint64_t alive = 0;
  for (std::size_t w = 0; w < full; ++w) {
    const std::uint8_t* p = replica + w * 64;
    std::uint64_t m = 0;
    for (unsigned j = 0; j < 64; ++j) {
      m |= static_cast<std::uint64_t>(p[j] == 0) << j;
    }
    words[w] &= m;
    alive |= words[w];
  }
  if (const std::size_t tail = rows % 64; tail != 0) {
    const std::uint8_t* p = replica + full * 64;
    std::uint64_t m = 0;
    for (unsigned j = 0; j < tail; ++j) {
      m |= static_cast<std::uint64_t>(p[j] == 0) << j;
    }
    words[full] &= m;
    alive |= words[full];
  }
  *any = alive;
}

void ColumnStore::truncate(std::size_t rows) {
  ids_.resize(rows);
  sources_.resize(rows);
  times_.resize(rows);
  for (std::size_t d = 0; d < dims_; ++d) cols_[d].resize(rows);
  if (with_meta_) {
    holders_.resize(rows);
    replica_.resize(rows);
  }
  rebuild_zone_maps();
}

void ColumnStore::rebuild_zone_maps() {
  const std::size_t n = ids_.size();
  const std::size_t blocks = (n + kBlockRows - 1) / kBlockRows;
  zmin_.assign(blocks * dims_, std::numeric_limits<double>::infinity());
  zmax_.assign(blocks * dims_, -std::numeric_limits<double>::infinity());
  for (std::size_t block = 0; block < blocks; ++block) {
    const std::size_t base = block * kBlockRows;
    const std::size_t end = std::min(base + kBlockRows, n);
    double* zmin = &zmin_[block * dims_];
    double* zmax = &zmax_[block * dims_];
    for (std::size_t d = 0; d < dims_; ++d) {
      const double* col = cols_[d].data();
      double mn = zmin[d], mx = zmax[d];
      for (std::size_t r = base; r < end; ++r) {
        const double v = col[r];
        if (v < mn) mn = v;
        if (v > mx) mx = v;
      }
      zmin[d] = mn;
      zmax[d] = mx;
    }
  }
}

void ColumnStore::clear() {
  ids_.clear();
  sources_.clear();
  times_.clear();
  for (std::size_t d = 0; d < dims_; ++d) cols_[d].clear();
  holders_.clear();
  replica_.clear();
  zmin_.clear();
  zmax_.clear();
}

}  // namespace poolnet::storage::column
