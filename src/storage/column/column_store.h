// Structure-of-arrays event storage with zone-map block skipping (DESIGN §14).
//
// Every per-node store in the reproduction (Pool cells, DIM zone leaves,
// GHT home stores, the central oracle) answers range queries by scanning a
// vector of events and testing each attribute bound with a branch per
// event. ColumnStore replaces that AoS scan with a columnar layout: one
// contiguous double array per attribute plus parallel id/source/timestamp
// arrays, chopped into fixed-size blocks of kBlockRows rows. Each block
// carries a per-attribute min/max zone map, so filtering is a two-step
// kernel:
//
//   1. Skip whole blocks whose zone map cannot intersect the query
//      rectangle (zmax < lo or zmin > hi in any dimension).
//   2. For surviving blocks, run a branch-free predicate kernel per
//      attribute column emitting a 64-rows-per-word selection bitmap,
//      AND-intersected column by column, then visit set bits in row order.
//
// The kernel contract is strict: rows are visited in insertion order and
// the predicate is exactly RangeQuery::matches (ClosedInterval::contains
// per dimension, don't-care dimensions already rewritten to [0,1]), so
// results are byte-identical to the AoS scans this store replaces —
// including aggregate float accumulation order.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/assert.h"
#include "storage/event.h"
#include "storage/range_query.h"

namespace poolnet::storage::column {

/// Rows per block. 256 rows = 4 bitmap words; 2 KB per attribute column —
/// small enough that sparse cell stores waste little, large enough that the
/// inner loops vectorize and a zone-map hit skips meaningful work.
inline constexpr std::size_t kBlockRows = 256;
inline constexpr std::size_t kWordsPerBlock = kBlockRows / 64;

/// Hot-path scan counters (PR 4 style: plain fields bumped inline,
/// published to the metrics registry at scrape time as `store.scan.*`).
struct ScanStats {
  std::uint64_t rows_scanned = 0;    ///< rows in blocks the kernel evaluated
  std::uint64_t blocks_skipped = 0;  ///< blocks rejected by zone maps alone
  std::uint64_t bytes_touched = 0;   ///< column bytes the kernel read
};

class ColumnStore {
 public:
  /// `with_meta` adds parallel holder/replica columns (Pool's StoredEvent
  /// bookkeeping); the other systems store bare events.
  explicit ColumnStore(std::size_t dims, bool with_meta = false)
      : dims_(dims), with_meta_(with_meta) {
    POOLNET_ASSERT(dims >= 1 && dims <= kMaxDims);
  }

  std::size_t dims() const { return dims_; }
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Scan counters are owned by the enclosing system (one sink across all
  /// of its cell/zone stores); null disables accounting.
  void set_stats(ScanStats* stats) { stats_ = stats; }

  void append(const Event& e) { append(e, net::kNoNode, false); }

  void append(const Event& e, net::NodeId holder, bool is_replica) {
    POOLNET_ASSERT(e.dims() == dims_);
    const std::size_t row = ids_.size();
    if (row % kBlockRows == 0) grow_block();
    ids_.push_back(e.id);
    sources_.push_back(e.source);
    times_.push_back(e.detected_at);
    double* zmin = &zmin_[(row / kBlockRows) * dims_];
    double* zmax = &zmax_[(row / kBlockRows) * dims_];
    for (std::size_t d = 0; d < dims_; ++d) {
      const double v = e.values[d];
      cols_[d].push_back(v);
      if (v < zmin[d]) zmin[d] = v;
      if (v > zmax[d]) zmax[d] = v;
    }
    if (with_meta_) {
      holders_.push_back(holder);
      replica_.push_back(is_replica ? 1 : 0);
    }
  }

  // Row accessors (meta accessors require with_meta construction).
  std::uint64_t id_at(std::size_t row) const { return ids_[row]; }
  net::NodeId source_at(std::size_t row) const { return sources_[row]; }
  double time_at(std::size_t row) const { return times_[row]; }
  double value_at(std::size_t row, std::size_t d) const {
    return cols_[d][row];
  }
  net::NodeId holder_at(std::size_t row) const { return holders_[row]; }
  bool replica_at(std::size_t row) const { return replica_[row] != 0; }

  // Block-level views for scans whose veto predicate is not a rectangle
  // (skyline dominance, k-NN shell distance). The zone maps are the same
  // ones scan() consults; callers account their own ScanStats.
  std::size_t block_count() const {
    return (ids_.size() + kBlockRows - 1) / kBlockRows;
  }
  std::size_t block_rows(std::size_t block) const {
    return std::min(kBlockRows, ids_.size() - block * kBlockRows);
  }
  /// Per-attribute minima / maxima of `block` (arrays of dims() doubles).
  const double* block_min(std::size_t block) const {
    return &zmin_[block * dims_];
  }
  const double* block_max(std::size_t block) const {
    return &zmax_[block * dims_];
  }

  Event event_at(std::size_t row) const {
    Event e;
    e.id = ids_[row];
    e.source = sources_[row];
    e.detected_at = times_[row];
    for (std::size_t d = 0; d < dims_; ++d) e.values.push_back(cols_[d][row]);
    return e;
  }

  /// The scan kernel. Calls `fn(row)` for every row matching `q`, in
  /// insertion order. `skip_replicas` additionally drops rows whose replica
  /// flag is set (Pool's primary-only scans); it is a no-op without meta.
  /// `use_zone_maps = false` disables the block veto (same rows, every
  /// block evaluated) — the bench ablation arm, never the production path.
  template <typename RowFn>
  void scan(const RangeQuery& q, bool skip_replicas, RowFn&& fn,
            bool use_zone_maps = true) const {
    const std::size_t n = ids_.size();
    const auto& bounds = q.bounds();
    for (std::size_t base = 0, block = 0; base < n;
         base += kBlockRows, ++block) {
      const std::size_t rows = std::min(kBlockRows, n - base);
      const double* zmin = &zmin_[block * dims_];
      const double* zmax = &zmax_[block * dims_];
      bool skip = false;
      for (std::size_t d = 0; d < dims_ && use_zone_maps; ++d) {
        if (zmax[d] < bounds[d].lo || zmin[d] > bounds[d].hi) {
          skip = true;
          break;
        }
      }
      if (skip) {
        if (stats_ != nullptr) ++stats_->blocks_skipped;
        continue;
      }
      std::uint64_t words[kWordsPerBlock];
      const std::size_t nwords = (rows + 63) / 64;
      for (std::size_t w = 0; w < nwords; ++w) words[w] = ~std::uint64_t{0};
      words[nwords - 1] >>= (nwords * 64 - rows);
      std::uint64_t any = ~std::uint64_t{0};
      std::uint64_t touched = 0;
      for (std::size_t d = 0; d < dims_ && any != 0; ++d) {
        filter_column(cols_[d].data() + base, rows, bounds[d].lo, bounds[d].hi,
                      words, &any);
        touched += rows * sizeof(double);
      }
      if (any != 0 && skip_replicas && with_meta_) {
        filter_primaries(replica_.data() + base, rows, words, &any);
        touched += rows;
      }
      if (stats_ != nullptr) {
        stats_->rows_scanned += rows;
        stats_->bytes_touched += touched;
      }
      if (any == 0) continue;
      for (std::size_t w = 0; w < nwords; ++w) {
        std::uint64_t m = words[w];
        while (m != 0) {
          const unsigned j = static_cast<unsigned>(std::countr_zero(m));
          m &= m - 1;
          fn(base + w * 64 + j);
        }
      }
    }
  }

  /// Scalar single-row predicate — exactly RangeQuery::matches against the
  /// stored columns (union re-scans, equivalence tests).
  bool row_matches(const RangeQuery& q, std::size_t row) const {
    const auto& bounds = q.bounds();
    for (std::size_t d = 0; d < dims_; ++d) {
      if (!bounds[d].contains(cols_[d][row])) return false;
    }
    return true;
  }

  /// Append every matching event to `out` (scratch-friendly; no clear).
  void matching_into(const RangeQuery& q, std::vector<Event>& out) const {
    scan(q, false, [&](std::size_t row) { out.push_back(event_at(row)); });
  }

  /// Visit every row in insertion order (replay, survivability audits).
  template <typename RowFn>
  void for_each(RowFn&& fn) const {
    const std::size_t n = ids_.size();
    for (std::size_t row = 0; row < n; ++row) fn(row);
  }

  /// Stable in-place compaction: drops every row where `pred(row)` is
  /// true (pred may carry side effects — it sees each surviving and dying
  /// row exactly once, in order, at its original index). Returns the
  /// number of rows removed. Zone maps are rebuilt afterwards.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    const std::size_t n = ids_.size();
    std::size_t w = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (pred(r)) continue;
      if (w != r) move_row(r, w);
      ++w;
    }
    if (w == n) return 0;
    truncate(w);
    return n - w;
  }

  /// Drop rows with detected_at < cutoff; returns the count removed.
  std::size_t expire_before(double cutoff) {
    return erase_if([&](std::size_t r) { return times_[r] < cutoff; });
  }

  void clear();

 private:
  void grow_block() {
    zmin_.insert(zmin_.end(), dims_,
                 std::numeric_limits<double>::infinity());
    zmax_.insert(zmax_.end(), dims_,
                 -std::numeric_limits<double>::infinity());
  }

  // Branch-free per-column predicate: AND each 64-row word of
  // (v >= lo) & (v <= hi) into `words`, OR the surviving bits into *any.
  // Full words run a fixed-trip-count loop the compiler can vectorize.
  static void filter_column(const double* col, std::size_t rows, double lo,
                            double hi, std::uint64_t* words,
                            std::uint64_t* any);
  static void filter_primaries(const std::uint8_t* replica, std::size_t rows,
                               std::uint64_t* words, std::uint64_t* any);

  void move_row(std::size_t from, std::size_t to) {
    ids_[to] = ids_[from];
    sources_[to] = sources_[from];
    times_[to] = times_[from];
    for (std::size_t d = 0; d < dims_; ++d) cols_[d][to] = cols_[d][from];
    if (with_meta_) {
      holders_[to] = holders_[from];
      replica_[to] = replica_[from];
    }
  }

  void truncate(std::size_t rows);
  void rebuild_zone_maps();

  std::size_t dims_;
  bool with_meta_;
  ScanStats* stats_ = nullptr;
  std::vector<std::uint64_t> ids_;
  std::vector<net::NodeId> sources_;
  std::vector<double> times_;
  std::vector<double> cols_[kMaxDims];
  std::vector<net::NodeId> holders_;   // meta only
  std::vector<std::uint8_t> replica_;  // meta only, 0/1
  std::vector<double> zmin_;  // blocks x dims
  std::vector<double> zmax_;
};

}  // namespace poolnet::storage::column
