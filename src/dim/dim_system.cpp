#include "dim/dim_system.h"

#include "common/error.h"

namespace poolnet::dim {

using storage::Event;
using storage::InsertReceipt;
using storage::QueryReceipt;
using storage::RangeQuery;

DimSystem::DimSystem(net::Network& network,
                     const routing::Router& router, std::size_t dims)
    : net_(network),
      router_(router),
      tree_(network, dims),
      store_(tree_.size()),
      rep_cache_(tree_.size(), net::kNoNode) {}

net::NodeId DimSystem::representative(ZoneIndex zidx) const {
  net::NodeId& memo = rep_cache_[zidx];
  if (memo == net::kNoNode) {
    const ZoneNode& z = tree_.zone(zidx);
    memo = z.is_leaf() ? z.owner : net_.nearest_node(z.region.center());
  }
  return memo;
}

InsertReceipt DimSystem::insert(net::NodeId source, const Event& event) {
  storage::validate_event(event);
  if (event.dims() != dims())
    throw ConfigError("DIM: event dimensionality mismatch");

  const ZoneIndex leaf = tree_.leaf_for_event(event);
  const net::NodeId owner = tree_.zone(leaf).owner;

  const auto before = net_.traffic().total;
  const auto route = router_.route_to_node(source, owner);
  net_.transmit_path(route.path, net::MessageKind::Insert,
                     net_.sizes().event_bits(dims()));

  store_[leaf].push_back(event);
  ++stored_count_;
  ++net_.node_mut(owner).stored_events;

  InsertReceipt receipt;
  receipt.stored_at = owner;
  receipt.messages = net_.traffic().total - before;
  return receipt;
}

QueryReceipt DimSystem::query(net::NodeId sink, const RangeQuery& q) {
  if (q.dims() != dims())
    throw ConfigError("DIM: query dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();

  // The sink addresses the query to the deepest zone that encloses it and
  // routes it there; refinement then happens inside the zone.
  const ZoneIndex start = tree_.enclosing_zone(q);
  if (ZoneTree::zone_intersects(tree_.zone(start), q)) {
    const net::NodeId entry = representative(start);
    const auto leg = router_.route_to_node(sink, entry);
    net_.transmit_path(leg.path, net::MessageKind::Query,
                       net_.sizes().query_bits(dims()));
    process_subtree(entry, start, q, sink, receipt);
  }

  const auto delta = net_.traffic() - before;
  receipt.messages = delta.total;
  receipt.query_messages = delta.of(net::MessageKind::Query) +
                           delta.of(net::MessageKind::SubQuery);
  receipt.reply_messages = delta.of(net::MessageKind::Reply);
  return receipt;
}

template <typename LeafFn>
void DimSystem::walk_subtree(net::NodeId carrier, ZoneIndex zidx,
                             const RangeQuery& q, LeafFn&& on_leaf) {
  const ZoneNode& z = tree_.zone(zidx);
  if (z.is_leaf()) {
    // Final leg to the zone owner, then the leaf-local action.
    if (carrier != z.owner) {
      const auto leg = router_.route_to_node(carrier, z.owner);
      net_.transmit_path(leg.path, net::MessageKind::SubQuery,
                         net_.sizes().query_bits(dims()));
    }
    on_leaf(zidx);
    return;
  }

  const bool lower_hit = ZoneTree::zone_intersects(tree_.zone(z.lower), q);
  const bool upper_hit = ZoneTree::zone_intersects(tree_.zone(z.upper), q);
  if (lower_hit && upper_hit) {
    // The query splits here: one subquery message per child region.
    for (const ZoneIndex child : {z.lower, z.upper}) {
      const net::NodeId next = representative(child);
      if (next != carrier) {
        const auto leg = router_.route_to_node(carrier, next);
        net_.transmit_path(leg.path, net::MessageKind::SubQuery,
                           net_.sizes().query_bits(dims()));
      }
      walk_subtree(next, child, q, on_leaf);
    }
  } else if (lower_hit) {
    walk_subtree(carrier, z.lower, q, on_leaf);
  } else if (upper_hit) {
    walk_subtree(carrier, z.upper, q, on_leaf);
  }
}

void DimSystem::process_subtree(net::NodeId carrier, ZoneIndex zidx,
                                const RangeQuery& q, net::NodeId sink,
                                QueryReceipt& receipt) {
  walk_subtree(carrier, zidx, q, [&](ZoneIndex leaf) {
    const ZoneNode& z = tree_.zone(leaf);
    ++receipt.index_nodes_visited;
    std::uint32_t found = 0;
    for (const Event& e : store_[leaf]) {
      if (q.matches(e)) {
        receipt.events.push_back(e);
        ++found;
      }
    }
    if (found > 0 && z.owner != sink) {
      const auto back = router_.route_to_node(z.owner, sink);
      const auto& sizes = net_.sizes();
      const std::uint64_t n_msgs = sizes.reply_batches(found);
      for (std::uint64_t i = 0; i < n_msgs; ++i) {
        net_.transmit_path(
            back.path, net::MessageKind::Reply,
            sizes.reply_bits(dims(), sizes.reply_payload(found)));
      }
    }
  });
}

storage::AggregateReceipt DimSystem::aggregate(net::NodeId sink,
                                               const RangeQuery& q,
                                               storage::AggregateKind kind,
                                               std::size_t value_dim) {
  if (q.dims() != dims())
    throw ConfigError("DIM: query dimensionality mismatch");
  if (value_dim >= dims())
    throw ConfigError("DIM: aggregate dimension out of range");

  storage::AggregateReceipt receipt;
  const auto before = net_.traffic();
  storage::PartialAggregate total;

  const ZoneIndex start = tree_.enclosing_zone(q);
  if (ZoneTree::zone_intersects(tree_.zone(start), q)) {
    const net::NodeId entry = representative(start);
    const auto leg = router_.route_to_node(sink, entry);
    net_.transmit_path(leg.path, net::MessageKind::Query,
                       net_.sizes().query_bits(dims()));
    walk_subtree(entry, start, q, [&](ZoneIndex leaf) {
      const ZoneNode& z = tree_.zone(leaf);
      ++receipt.index_nodes_visited;
      storage::PartialAggregate partial;
      for (const Event& e : store_[leaf]) {
        if (q.matches(e)) partial.add(e.values[value_dim]);
      }
      if (!partial.empty()) {
        total.merge(partial);
        if (z.owner != sink) {
          // One fixed-size partial straight to the sink.
          const auto back = router_.route_to_node(z.owner, sink);
          net_.transmit_path(back.path, net::MessageKind::Reply,
                             net_.sizes().aggregate_bits());
        }
      }
    });
  }

  receipt.result = total.finalize(kind);
  const auto delta = net_.traffic() - before;
  receipt.messages = delta.total;
  receipt.query_messages = delta.of(net::MessageKind::Query) +
                           delta.of(net::MessageKind::SubQuery);
  receipt.reply_messages = delta.of(net::MessageKind::Reply);
  return receipt;
}

std::size_t DimSystem::expire_before(double cutoff) {
  std::size_t removed = 0;
  for (const ZoneIndex leaf : tree_.leaves()) {
    auto& events = store_[leaf];
    const auto before = events.size();
    std::erase_if(events, [cutoff](const Event& e) {
      return e.detected_at < cutoff;
    });
    const auto gone = before - events.size();
    if (gone > 0) {
      removed += gone;
      net_.node_mut(tree_.zone(leaf).owner).stored_events -= gone;
    }
  }
  stored_count_ -= removed;
  return removed;
}

const std::vector<Event>& DimSystem::zone_store(ZoneIndex leaf) const {
  POOLNET_ASSERT(leaf < store_.size());
  return store_[leaf];
}

}  // namespace poolnet::dim
