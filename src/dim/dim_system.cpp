#include "dim/dim_system.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace poolnet::dim {

using storage::Event;
using storage::InsertReceipt;
using storage::QueryReceipt;
using storage::RangeQuery;

DimSystem::DimSystem(net::Network& network,
                     const routing::Router& router, std::size_t dims)
    : net_(network),
      router_(router),
      tree_(network, dims),
      store_(tree_.size(), storage::column::ColumnStore(dims)),
      rep_cache_(tree_.size(), net::kNoNode) {
  for (auto& cs : store_) cs.set_stats(&scan_stats_);
}

std::string DimSystem::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "DIM (dims=%zu, zones=%zu)", tree_.dims(),
                tree_.leaf_count());
  return buf;
}

net::NodeId DimSystem::representative(ZoneIndex zidx) const {
  net::NodeId& memo = rep_cache_[zidx];
  if (memo == net::kNoNode) {
    const ZoneNode& z = tree_.zone(zidx);
    memo = z.is_leaf() ? z.owner : net_.nearest_alive_node(z.region.center());
  }
  return memo;
}

const routing::LegOutcome& DimSystem::send_leg(net::NodeId from,
                                               net::NodeId to,
                                               net::MessageKind kind,
                                               std::uint64_t bits) {
  if (from == to) {
    // Mirror the historical bare leg exactly (self-routes still pay a
    // router lookup and a no-op path transmit) so fault-free ledgers and
    // route-cache stats stay byte-identical.
    router_.route_to_node_into(from, to, leg_scratch_.route);
    net_.transmit_path(leg_scratch_.route.path, kind, bits);
    leg_scratch_.delivered = true;
    leg_scratch_.reached = to;
    leg_scratch_.retries = 0;
    leg_scratch_.backoff_ticks = 0;
    leg_scratch_.dead_found.clear();
    return leg_scratch_;
  }
  routing::send_reliable_into(net_, router_, from, to, kind, bits, {},
                              leg_scratch_);
  fault_stats_.retries += leg_scratch_.retries;
  if (!leg_scratch_.delivered) ++fault_stats_.failed_legs;
  for (const net::NodeId d : leg_scratch_.dead_found) handle_node_failure(d);
  return leg_scratch_;
}

void DimSystem::handle_node_failure(net::NodeId dead) {
  if (dead >= net_.size()) return;
  if (known_dead_.empty()) known_dead_.assign(net_.size(), 0);
  if (known_dead_[dead]) return;
  known_dead_[dead] = 1;

  // Forget every cached representative that points at the dead node:
  // internal zones re-elect the nearest survivor, leaves re-read their
  // (possibly reassigned) owner on the next lookup.
  for (net::NodeId& memo : rep_cache_)
    if (memo == dead) memo = net::kNoNode;

  for (const ZoneIndex leaf : tree_.leaves()) {
    if (tree_.zone(leaf).owner != dead) continue;
    auto& events = store_[leaf];
    if (!events.empty()) {
      // DIM keeps a single copy per event, so storage that was resident
      // at the dead owner is gone for good.
      fault_stats_.events_lost += events.size();
      stored_count_ -= events.size();
      net_.node_mut(dead).stored_events -= events.size();
      events.clear();
    }
    // Zone-tree neighbor adoption; kNoNode when nobody survives at all.
    tree_.reassign_leaf(leaf, tree_.adopting_neighbor(leaf, net_));
    ++fault_stats_.failovers;
  }
}

InsertReceipt DimSystem::insert(net::NodeId source, const Event& event) {
  storage::validate_event(event);
  if (event.dims() != dims())
    throw ConfigError("DIM: event dimensionality mismatch");

  const ZoneIndex leaf = tree_.leaf_for_event(event);
  net::NodeId owner = tree_.zone(leaf).owner;

  const auto before = net_.traffic().total;
  InsertReceipt receipt;
  if (owner == net::kNoNode) {  // every candidate owner already dead
    ++fault_stats_.events_lost;
    receipt.stored_at = net::kNoNode;
    return receipt;
  }

  const std::uint64_t bits = net_.sizes().event_bits(dims());
  bool delivered =
      send_leg(source, owner, net::MessageKind::Insert, bits).delivered;
  if (!delivered) {
    // The failed delivery triggered failover; retry once toward the
    // zone's adopted owner.
    const net::NodeId adopted = tree_.zone(leaf).owner;
    if (adopted != owner && adopted != net::kNoNode) {
      owner = adopted;
      delivered =
          send_leg(source, owner, net::MessageKind::Insert, bits).delivered;
    }
  }
  if (!delivered) {
    ++fault_stats_.events_lost;
    receipt.stored_at = net::kNoNode;
    receipt.messages = net_.traffic().total - before;
    return receipt;
  }

  store_[leaf].append(event);
  ++stored_count_;
  ++net_.node_mut(owner).stored_events;

  receipt.stored_at = owner;
  receipt.messages = net_.traffic().total - before;
  return receipt;
}

QueryReceipt DimSystem::query(net::NodeId sink, const RangeQuery& q) {
  if (q.dims() != dims())
    throw ConfigError("DIM: query dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();

  // The sink addresses the query to the deepest zone that encloses it and
  // routes it there; refinement then happens inside the zone.
  const ZoneIndex start = tree_.enclosing_zone(q);
  if (ZoneTree::zone_intersects(tree_.zone(start), q)) {
    const std::uint64_t qbits = net_.sizes().query_bits(dims());
    net::NodeId entry = representative(start);
    bool arrived = entry != net::kNoNode;
    if (arrived) {
      arrived = send_leg(sink, entry, net::MessageKind::Query, qbits).delivered;
      if (!arrived) {
        // Failover just re-elected the zone's representative; retry once.
        const net::NodeId re = representative(start);
        if (re != entry && re != net::kNoNode) {
          entry = re;
          arrived =
              send_leg(sink, entry, net::MessageKind::Query, qbits).delivered;
        }
      }
    }
    if (arrived) process_subtree(entry, start, q, sink, receipt);
  }

  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

QueryReceipt DimSystem::skyline(net::NodeId sink,
                                const storage::SkylineQuery& q) {
  if (q.dims() != dims())
    throw ConfigError("DIM: skyline dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();
  const std::uint64_t qbits = sizes.query_bits(dims());

  // The zone code fixes every leaf's value-range box, so the sink knows
  // each zone's best possible point — the top of its box — without a
  // single message. Visit leaves best-corner-first; collected skyline
  // points then veto later (worse-cornered) zones outright.
  struct Candidate {
    double key;  ///< Σ corner over selected attrs (descending visit order)
    ZoneIndex leaf;
    storage::Values corner;
  };
  std::vector<Candidate> cands;
  cands.reserve(tree_.leaf_count());
  for (const ZoneIndex leaf : tree_.leaves()) {
    const ZoneNode& z = tree_.zone(leaf);
    Candidate c{0.0, leaf, {}};
    for (std::size_t d = 0; d < dims(); ++d) {
      c.corner.push_back(z.ranges[d].hi);
      if (q.on(d)) c.key += z.ranges[d].hi;
    }
    cands.push_back(std::move(c));
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.key != b.key) return a.key > b.key;
              return a.leaf < b.leaf;
            });

  std::vector<Event> collected;
  for (const Candidate& c : cands) {
    // A zone whose corner is dominated can only hold dominated events
    // (strictness against the corner carries down to every event at or
    // below it) — prune it before any transmission.
    if (!storage::skyline_admits(q, collected, c.corner)) continue;

    // The sink addresses the leaf's owner directly (the zone tree is
    // global knowledge, like insert's event-to-zone addressing); the
    // best-first visit order has no use for the recursive split walk.
    net::NodeId owner = tree_.zone(c.leaf).owner;
    if (owner == net::kNoNode) continue;
    bool arrived =
        send_leg(sink, owner, net::MessageKind::Query, qbits).delivered;
    if (!arrived) {
      // Failover may have handed the zone to an adopter; retry once.
      const net::NodeId adopted = tree_.zone(c.leaf).owner;
      if (adopted != owner && adopted != net::kNoNode) {
        owner = adopted;
        arrived =
            send_leg(sink, owner, net::MessageKind::Query, qbits).delivered;
      }
    }
    if (!arrived) continue;
    ++receipt.index_nodes_visited;

    // The owner reduces its residents to their LOCAL skyline before
    // replying — an event dominated within its own zone is dominated
    // globally, so reply volume shrinks with correctness untouched.
    std::vector<Event> local = zone_store(c.leaf);
    storage::skyline_filter(q, local);
    const auto found = static_cast<std::uint32_t>(local.size());
    if (found == 0) continue;
    bool returned = true;
    if (owner != sink) {
      const std::uint64_t bits =
          sizes.reply_bits(dims(), sizes.reply_payload(found));
      const auto& first = send_leg(owner, sink, net::MessageKind::Reply, bits);
      returned = first.delivered;
      const std::uint64_t batches = sizes.reply_batches(found);
      for (std::uint64_t b = 1; returned && b < batches; ++b)
        net_.transmit_path(first.route.path, net::MessageKind::Reply, bits);
    }
    if (!returned) continue;
    for (Event& e : local)
      if (storage::skyline_admits(q, collected, e.values))
        collected.push_back(std::move(e));
  }

  storage::skyline_filter(q, collected);
  receipt.events = std::move(collected);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

QueryReceipt DimSystem::k_nearest(net::NodeId sink,
                                  const storage::KNearestQuery& q) {
  if (q.dims() != dims())
    throw ConfigError("DIM: k-NN target dimensionality mismatch");
  if (q.initial_radius < 0.0)
    throw ConfigError("DIM: k-NN initial radius must be positive");

  QueryReceipt receipt;
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();
  const std::uint64_t qbits = sizes.query_bits(dims());

  std::vector<char> visited(tree_.size(), 0);  // by leaf ZoneIndex
  std::vector<Event> cand;

  double radius = q.initial_radius > 0.0 ? q.initial_radius : 0.05;
  while (true) {
    ++receipt.rounds;
    const RangeQuery box = storage::box_around(q.target, radius);

    for (const ZoneIndex leaf : tree_.leaves_overlapping(box)) {
      if (visited[leaf]) continue;
      visited[leaf] = 1;
      const net::NodeId owner = tree_.zone(leaf).owner;
      if (owner == net::kNoNode) continue;
      if (!send_leg(sink, owner, net::MessageKind::Query, qbits).delivered)
        continue;
      ++receipt.index_nodes_visited;

      // The owner answers with its local top-k, box or not — the box
      // only picks WHICH zones to visit, so a visited zone never needs
      // re-querying when the ring later grows.
      std::vector<Event> local = zone_store(leaf);
      storage::knn_filter(q, local);
      const auto found = static_cast<std::uint32_t>(local.size());
      if (found == 0) continue;
      bool returned = true;
      if (owner != sink) {
        const std::uint64_t bits =
            sizes.reply_bits(dims(), sizes.reply_payload(found));
        const auto& first =
            send_leg(owner, sink, net::MessageKind::Reply, bits);
        returned = first.delivered;
        const std::uint64_t batches = sizes.reply_batches(found);
        for (std::uint64_t b = 1; returned && b < batches; ++b)
          net_.transmit_path(first.route.path, net::MessageKind::Reply, bits);
      }
      if (!returned) continue;
      for (Event& e : local) cand.push_back(std::move(e));
      storage::knn_filter(q, cand);  // sink keeps only the running top-k
    }

    // Complete when the k-th candidate lies within the proven-covered
    // radius, or the box already spans the whole value space.
    if (cand.size() >= q.k &&
        std::sqrt(storage::knn_kth_distance2(q, cand)) <= radius)
      break;
    if (radius >= 1.0) break;  // whole space searched
    radius = std::min(1.0, radius * 2.0);
  }

  storage::knn_filter(q, cand);
  receipt.events = std::move(cand);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

template <typename LeafFn>
void DimSystem::walk_subtree(net::NodeId carrier, ZoneIndex zidx,
                             const RangeQuery& q, LeafFn&& on_leaf) {
  const ZoneNode& z = tree_.zone(zidx);
  const std::uint64_t qbits = net_.sizes().query_bits(dims());
  if (z.is_leaf()) {
    // Final leg to the zone owner, then the leaf-local action. Note that
    // a failed leg runs failover, which rewrites z.owner in place — fetch
    // the adopted owner through the tree, not the (stale) local binding.
    const net::NodeId owner = z.owner;
    if (owner == net::kNoNode) return;
    if (carrier != owner) {
      if (!send_leg(carrier, owner, net::MessageKind::SubQuery, qbits)
               .delivered) {
        const net::NodeId adopted = tree_.zone(zidx).owner;
        if (adopted == owner || adopted == net::kNoNode ||
            !net_.alive(adopted))
          return;
        if (carrier != adopted) {
          if (!send_leg(carrier, adopted, net::MessageKind::SubQuery, qbits)
                   .delivered)
            return;
        }
      }
    }
    on_leaf(zidx);
    return;
  }

  const bool lower_hit = ZoneTree::zone_intersects(tree_.zone(z.lower), q);
  const bool upper_hit = ZoneTree::zone_intersects(tree_.zone(z.upper), q);
  if (lower_hit && upper_hit) {
    // The query splits here: one subquery message per child region.
    for (const ZoneIndex child : {z.lower, z.upper}) {
      net::NodeId next = representative(child);
      if (next == net::kNoNode) continue;
      if (next != carrier) {
        if (!send_leg(carrier, next, net::MessageKind::SubQuery, qbits)
                 .delivered) {
          // Failover re-elected the child's representative; retry once.
          const net::NodeId re = representative(child);
          if (re == next || re == net::kNoNode) continue;
          next = re;
          if (next != carrier) {
            if (!send_leg(carrier, next, net::MessageKind::SubQuery, qbits)
                     .delivered)
              continue;
          }
        }
      }
      walk_subtree(next, child, q, on_leaf);
    }
  } else if (lower_hit) {
    walk_subtree(carrier, z.lower, q, on_leaf);
  } else if (upper_hit) {
    walk_subtree(carrier, z.upper, q, on_leaf);
  }
}

void DimSystem::process_subtree(net::NodeId carrier, ZoneIndex zidx,
                                const RangeQuery& q, net::NodeId sink,
                                QueryReceipt& receipt) {
  walk_subtree(carrier, zidx, q, [&](ZoneIndex leaf) {
    ++receipt.index_nodes_visited;
    std::vector<Event> matched;
    store_[leaf].matching_into(q, matched);
    const auto found = static_cast<std::uint32_t>(matched.size());
    const net::NodeId owner = tree_.zone(leaf).owner;
    bool returned = true;
    if (found > 0 && owner != sink) {
      const auto& sizes = net_.sizes();
      const std::uint64_t n_msgs = sizes.reply_batches(found);
      const std::uint64_t bits =
          sizes.reply_bits(dims(), sizes.reply_payload(found));
      // First batch travels reliably; the remaining batches reuse the
      // acked path (identical traffic to the historical one-route loop
      // on a fault-free network).
      const auto& first = send_leg(owner, sink, net::MessageKind::Reply, bits);
      returned = first.delivered;
      for (std::uint64_t i = 1; returned && i < n_msgs; ++i)
        net_.transmit_path(first.route.path, net::MessageKind::Reply, bits);
    }
    // Answers only count once they actually reach the sink — a reply leg
    // that dies en route must show up as recall loss, not as data.
    if (returned)
      receipt.events.insert(receipt.events.end(), matched.begin(),
                            matched.end());
  });
}

void DimSystem::serial_probe(
    net::NodeId carrier, ZoneIndex zidx, const RangeQuery& q,
    std::map<std::pair<net::NodeId, net::NodeId>, routing::RouteResult>& legs,
    std::uint64_t& cost,
    const std::function<void(ZoneIndex)>& on_leaf) const {
  const auto take_leg = [&](net::NodeId from, net::NodeId to) {
    const auto [it, fresh] = legs.try_emplace({from, to});
    if (fresh) it->second = router_.route_to_node(from, to);
    cost += it->second.hops();
  };
  const ZoneNode& z = tree_.zone(zidx);
  if (z.is_leaf()) {
    if (carrier != z.owner) take_leg(carrier, z.owner);
    on_leaf(zidx);
    return;
  }
  const bool lower_hit = ZoneTree::zone_intersects(tree_.zone(z.lower), q);
  const bool upper_hit = ZoneTree::zone_intersects(tree_.zone(z.upper), q);
  if (lower_hit && upper_hit) {
    for (const ZoneIndex child : {z.lower, z.upper}) {
      const net::NodeId next = representative(child);
      if (next != carrier) take_leg(carrier, next);
      serial_probe(next, child, q, legs, cost, on_leaf);
    }
  } else if (lower_hit) {
    serial_probe(carrier, z.lower, q, legs, cost, on_leaf);
  } else if (upper_hit) {
    serial_probe(carrier, z.upper, q, legs, cost, on_leaf);
  }
}

storage::BatchQueryReceipt DimSystem::query_batch(
    net::NodeId sink, const std::vector<RangeQuery>& queries) {
  if (queries.size() < 2) return DcsSystem::query_batch(sink, queries);
  for (const RangeQuery& q : queries)
    if (q.dims() != dims())
      throw ConfigError("DIM: query dimensionality mismatch");
  // With dead nodes around, the merged probe's cost accounting and
  // pre-computed legs no longer hold; fall back to hardened serial
  // execution (which retries and fails over per leg).
  if (net_.has_failures()) return DcsSystem::query_batch(sink, queries);

  storage::BatchQueryReceipt batch;
  batch.per_query.resize(queries.size());
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();
  std::uint64_t serial_cost = 0;

  using LegMap =
      std::map<std::pair<net::NodeId, net::NodeId>, routing::RouteResult>;
  LegMap entry_legs;  // sink → enclosing-zone representative (Query kind)
  LegMap walk_legs;   // split-and-forward legs (SubQuery kind)
  // Per visited leaf: this batch's match count per query (visits with no
  // matches still count as visits, like serial index_nodes_visited).
  std::map<ZoneIndex, std::vector<std::uint32_t>> leaf_found;

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const RangeQuery& q = queries[qi];
    const ZoneIndex start = tree_.enclosing_zone(q);
    if (!ZoneTree::zone_intersects(tree_.zone(start), q)) continue;
    const net::NodeId entry = representative(start);
    {
      const auto [it, fresh] = entry_legs.try_emplace({sink, entry});
      if (fresh) it->second = router_.route_to_node(sink, entry);
      serial_cost += it->second.hops();
    }
    serial_probe(entry, start, q, walk_legs, serial_cost, [&](ZoneIndex leaf) {
      auto [it, fresh] = leaf_found.try_emplace(leaf);
      if (fresh) it->second.assign(queries.size(), 0);
      ++batch.per_query[qi].index_nodes_visited;
      ++batch.serial_cell_visits;
      const auto& cs = store_[leaf];
      cs.scan(q, false, [&](std::size_t row) {
        batch.per_query[qi].events.push_back(cs.event_at(row));
        ++it->second[qi];
      });
    });
  }
  batch.unique_cell_visits = leaf_found.size();
  batch.index_nodes_visited = leaf_found.size();

  // Ship the merged probe: every distinct serial leg exactly once. Legs
  // shared by several queries carry all of them in one message.
  for (const auto& [key, leg] : entry_legs)
    net_.transmit_path(leg.path, net::MessageKind::Query,
                       sizes.query_bits(dims()));
  for (const auto& [key, leg] : walk_legs)
    net_.transmit_path(leg.path, net::MessageKind::SubQuery,
                       sizes.query_bits(dims()));

  // Each answering leaf replies once with the distinct matching events of
  // all askers; serial execution would have paid per asker.
  for (const auto& [leaf, counts] : leaf_found) {
    std::uint32_t union_found = 0;
    const auto& cs = store_[leaf];
    for (std::size_t row = 0; row < cs.size(); ++row) {
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        if (counts[qi] > 0 && cs.row_matches(queries[qi], row)) {
          ++union_found;
          break;
        }
      }
    }
    if (union_found == 0) continue;
    const ZoneNode& z = tree_.zone(leaf);
    if (z.owner == sink) continue;
    router_.route_to_node_into(z.owner, sink, route_scratch_);
    const std::uint64_t batches = sizes.reply_batches(union_found);
    for (std::uint64_t b = 0; b < batches; ++b) {
      net_.transmit_path(
          route_scratch_.path, net::MessageKind::Reply,
          sizes.reply_bits(dims(), sizes.reply_payload(union_found)));
    }
    for (std::size_t qi = 0; qi < queries.size(); ++qi)
      serial_cost += sizes.reply_batches(counts[qi]) * route_scratch_.hops();
  }

  const auto delta = net_.traffic() - before;
  batch.cost() = storage::cost_of(delta);
  if (net_.loss_model().loss_probability == 0.0 && net_.extra_loss() == 0.0)
    POOLNET_ASSERT(serial_cost >= delta.total);
  batch.messages_saved =
      serial_cost >= delta.total ? serial_cost - delta.total : 0;
  return batch;
}

storage::AggregateReceipt DimSystem::aggregate(net::NodeId sink,
                                               const RangeQuery& q,
                                               storage::AggregateKind kind,
                                               std::size_t value_dim) {
  if (q.dims() != dims())
    throw ConfigError("DIM: query dimensionality mismatch");
  if (value_dim >= dims())
    throw ConfigError("DIM: aggregate dimension out of range");

  storage::AggregateReceipt receipt;
  const auto before = net_.traffic();
  storage::PartialAggregate total;

  const ZoneIndex start = tree_.enclosing_zone(q);
  if (ZoneTree::zone_intersects(tree_.zone(start), q)) {
    const std::uint64_t qbits = net_.sizes().query_bits(dims());
    net::NodeId entry = representative(start);
    bool arrived = entry != net::kNoNode;
    if (arrived) {
      arrived = send_leg(sink, entry, net::MessageKind::Query, qbits).delivered;
      if (!arrived) {
        const net::NodeId re = representative(start);
        if (re != entry && re != net::kNoNode) {
          entry = re;
          arrived =
              send_leg(sink, entry, net::MessageKind::Query, qbits).delivered;
        }
      }
    }
    if (arrived) {
      walk_subtree(entry, start, q, [&](ZoneIndex leaf) {
        ++receipt.index_nodes_visited;
        storage::PartialAggregate partial;
        const auto& cs = store_[leaf];
        cs.scan(q, false, [&](std::size_t row) {
          partial.add(cs.value_at(row, value_dim));
        });
        if (!partial.empty()) {
          const net::NodeId owner = tree_.zone(leaf).owner;
          if (owner == sink) {
            total.merge(partial);
          } else {
            // One fixed-size partial straight to the sink; it only joins
            // the aggregate if the leg actually delivers.
            if (send_leg(owner, sink, net::MessageKind::Reply,
                         net_.sizes().aggregate_bits())
                    .delivered)
              total.merge(partial);
          }
        }
      });
    }
  }

  receipt.result = total.finalize(kind);
  const auto delta = net_.traffic() - before;
  receipt.cost() = storage::cost_of(delta);
  return receipt;
}

std::size_t DimSystem::expire_before(double cutoff) {
  std::size_t removed = 0;
  for (const ZoneIndex leaf : tree_.leaves()) {
    const auto gone = store_[leaf].expire_before(cutoff);
    if (gone > 0) {
      removed += gone;
      const net::NodeId owner = tree_.zone(leaf).owner;
      if (owner != net::kNoNode) net_.node_mut(owner).stored_events -= gone;
    }
  }
  stored_count_ -= removed;
  return removed;
}

std::vector<Event> DimSystem::zone_store(ZoneIndex leaf) const {
  POOLNET_ASSERT(leaf < store_.size());
  std::vector<Event> out;
  const auto& cs = store_[leaf];
  out.reserve(cs.size());
  cs.for_each([&](std::size_t row) { out.push_back(cs.event_at(row)); });
  return out;
}

}  // namespace poolnet::dim
