#include "dim/dim_system.h"

#include "common/error.h"

namespace poolnet::dim {

using storage::Event;
using storage::InsertReceipt;
using storage::QueryReceipt;
using storage::RangeQuery;

DimSystem::DimSystem(net::Network& network,
                     const routing::Router& router, std::size_t dims)
    : net_(network),
      router_(router),
      tree_(network, dims),
      store_(tree_.size()),
      rep_cache_(tree_.size(), net::kNoNode) {}

net::NodeId DimSystem::representative(ZoneIndex zidx) const {
  net::NodeId& memo = rep_cache_[zidx];
  if (memo == net::kNoNode) {
    const ZoneNode& z = tree_.zone(zidx);
    memo = z.is_leaf() ? z.owner : net_.nearest_node(z.region.center());
  }
  return memo;
}

InsertReceipt DimSystem::insert(net::NodeId source, const Event& event) {
  storage::validate_event(event);
  if (event.dims() != dims())
    throw ConfigError("DIM: event dimensionality mismatch");

  const ZoneIndex leaf = tree_.leaf_for_event(event);
  const net::NodeId owner = tree_.zone(leaf).owner;

  const auto before = net_.traffic().total;
  const auto route = router_.route_to_node(source, owner);
  net_.transmit_path(route.path, net::MessageKind::Insert,
                     net_.sizes().event_bits(dims()));

  store_[leaf].push_back(event);
  ++stored_count_;
  ++net_.node_mut(owner).stored_events;

  InsertReceipt receipt;
  receipt.stored_at = owner;
  receipt.messages = net_.traffic().total - before;
  return receipt;
}

QueryReceipt DimSystem::query(net::NodeId sink, const RangeQuery& q) {
  if (q.dims() != dims())
    throw ConfigError("DIM: query dimensionality mismatch");

  QueryReceipt receipt;
  const auto before = net_.traffic();

  // The sink addresses the query to the deepest zone that encloses it and
  // routes it there; refinement then happens inside the zone.
  const ZoneIndex start = tree_.enclosing_zone(q);
  if (ZoneTree::zone_intersects(tree_.zone(start), q)) {
    const net::NodeId entry = representative(start);
    const auto leg = router_.route_to_node(sink, entry);
    net_.transmit_path(leg.path, net::MessageKind::Query,
                       net_.sizes().query_bits(dims()));
    process_subtree(entry, start, q, sink, receipt);
  }

  const auto delta = net_.traffic() - before;
  receipt.messages = delta.total;
  receipt.query_messages = delta.of(net::MessageKind::Query) +
                           delta.of(net::MessageKind::SubQuery);
  receipt.reply_messages = delta.of(net::MessageKind::Reply);
  return receipt;
}

template <typename LeafFn>
void DimSystem::walk_subtree(net::NodeId carrier, ZoneIndex zidx,
                             const RangeQuery& q, LeafFn&& on_leaf) {
  const ZoneNode& z = tree_.zone(zidx);
  if (z.is_leaf()) {
    // Final leg to the zone owner, then the leaf-local action.
    if (carrier != z.owner) {
      const auto leg = router_.route_to_node(carrier, z.owner);
      net_.transmit_path(leg.path, net::MessageKind::SubQuery,
                         net_.sizes().query_bits(dims()));
    }
    on_leaf(zidx);
    return;
  }

  const bool lower_hit = ZoneTree::zone_intersects(tree_.zone(z.lower), q);
  const bool upper_hit = ZoneTree::zone_intersects(tree_.zone(z.upper), q);
  if (lower_hit && upper_hit) {
    // The query splits here: one subquery message per child region.
    for (const ZoneIndex child : {z.lower, z.upper}) {
      const net::NodeId next = representative(child);
      if (next != carrier) {
        const auto leg = router_.route_to_node(carrier, next);
        net_.transmit_path(leg.path, net::MessageKind::SubQuery,
                           net_.sizes().query_bits(dims()));
      }
      walk_subtree(next, child, q, on_leaf);
    }
  } else if (lower_hit) {
    walk_subtree(carrier, z.lower, q, on_leaf);
  } else if (upper_hit) {
    walk_subtree(carrier, z.upper, q, on_leaf);
  }
}

void DimSystem::process_subtree(net::NodeId carrier, ZoneIndex zidx,
                                const RangeQuery& q, net::NodeId sink,
                                QueryReceipt& receipt) {
  walk_subtree(carrier, zidx, q, [&](ZoneIndex leaf) {
    const ZoneNode& z = tree_.zone(leaf);
    ++receipt.index_nodes_visited;
    std::uint32_t found = 0;
    for (const Event& e : store_[leaf]) {
      if (q.matches(e)) {
        receipt.events.push_back(e);
        ++found;
      }
    }
    if (found > 0 && z.owner != sink) {
      const auto back = router_.route_to_node(z.owner, sink);
      const auto& sizes = net_.sizes();
      const std::uint64_t n_msgs = sizes.reply_batches(found);
      for (std::uint64_t i = 0; i < n_msgs; ++i) {
        net_.transmit_path(
            back.path, net::MessageKind::Reply,
            sizes.reply_bits(dims(), sizes.reply_payload(found)));
      }
    }
  });
}

void DimSystem::serial_probe(
    net::NodeId carrier, ZoneIndex zidx, const RangeQuery& q,
    std::map<std::pair<net::NodeId, net::NodeId>, routing::RouteResult>& legs,
    std::uint64_t& cost,
    const std::function<void(ZoneIndex)>& on_leaf) const {
  const auto take_leg = [&](net::NodeId from, net::NodeId to) {
    const auto [it, fresh] = legs.try_emplace({from, to});
    if (fresh) it->second = router_.route_to_node(from, to);
    cost += it->second.hops();
  };
  const ZoneNode& z = tree_.zone(zidx);
  if (z.is_leaf()) {
    if (carrier != z.owner) take_leg(carrier, z.owner);
    on_leaf(zidx);
    return;
  }
  const bool lower_hit = ZoneTree::zone_intersects(tree_.zone(z.lower), q);
  const bool upper_hit = ZoneTree::zone_intersects(tree_.zone(z.upper), q);
  if (lower_hit && upper_hit) {
    for (const ZoneIndex child : {z.lower, z.upper}) {
      const net::NodeId next = representative(child);
      if (next != carrier) take_leg(carrier, next);
      serial_probe(next, child, q, legs, cost, on_leaf);
    }
  } else if (lower_hit) {
    serial_probe(carrier, z.lower, q, legs, cost, on_leaf);
  } else if (upper_hit) {
    serial_probe(carrier, z.upper, q, legs, cost, on_leaf);
  }
}

storage::BatchQueryReceipt DimSystem::query_batch(
    net::NodeId sink, const std::vector<RangeQuery>& queries) {
  if (queries.size() < 2) return DcsSystem::query_batch(sink, queries);
  for (const RangeQuery& q : queries)
    if (q.dims() != dims())
      throw ConfigError("DIM: query dimensionality mismatch");

  storage::BatchQueryReceipt batch;
  batch.per_query.resize(queries.size());
  const auto before = net_.traffic();
  const auto& sizes = net_.sizes();
  std::uint64_t serial_cost = 0;

  using LegMap =
      std::map<std::pair<net::NodeId, net::NodeId>, routing::RouteResult>;
  LegMap entry_legs;  // sink → enclosing-zone representative (Query kind)
  LegMap walk_legs;   // split-and-forward legs (SubQuery kind)
  // Per visited leaf: this batch's match count per query (visits with no
  // matches still count as visits, like serial index_nodes_visited).
  std::map<ZoneIndex, std::vector<std::uint32_t>> leaf_found;

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const RangeQuery& q = queries[qi];
    const ZoneIndex start = tree_.enclosing_zone(q);
    if (!ZoneTree::zone_intersects(tree_.zone(start), q)) continue;
    const net::NodeId entry = representative(start);
    {
      const auto [it, fresh] = entry_legs.try_emplace({sink, entry});
      if (fresh) it->second = router_.route_to_node(sink, entry);
      serial_cost += it->second.hops();
    }
    serial_probe(entry, start, q, walk_legs, serial_cost, [&](ZoneIndex leaf) {
      auto [it, fresh] = leaf_found.try_emplace(leaf);
      if (fresh) it->second.assign(queries.size(), 0);
      ++batch.per_query[qi].index_nodes_visited;
      ++batch.serial_cell_visits;
      for (const Event& e : store_[leaf]) {
        if (q.matches(e)) {
          batch.per_query[qi].events.push_back(e);
          ++it->second[qi];
        }
      }
    });
  }
  batch.unique_cell_visits = leaf_found.size();
  batch.index_nodes_visited = leaf_found.size();

  // Ship the merged probe: every distinct serial leg exactly once. Legs
  // shared by several queries carry all of them in one message.
  for (const auto& [key, leg] : entry_legs)
    net_.transmit_path(leg.path, net::MessageKind::Query,
                       sizes.query_bits(dims()));
  for (const auto& [key, leg] : walk_legs)
    net_.transmit_path(leg.path, net::MessageKind::SubQuery,
                       sizes.query_bits(dims()));

  // Each answering leaf replies once with the distinct matching events of
  // all askers; serial execution would have paid per asker.
  for (const auto& [leaf, counts] : leaf_found) {
    std::uint32_t union_found = 0;
    for (const Event& e : store_[leaf]) {
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        if (counts[qi] > 0 && queries[qi].matches(e)) {
          ++union_found;
          break;
        }
      }
    }
    if (union_found == 0) continue;
    const ZoneNode& z = tree_.zone(leaf);
    if (z.owner == sink) continue;
    const auto back = router_.route_to_node(z.owner, sink);
    const std::uint64_t batches = sizes.reply_batches(union_found);
    for (std::uint64_t b = 0; b < batches; ++b) {
      net_.transmit_path(
          back.path, net::MessageKind::Reply,
          sizes.reply_bits(dims(), sizes.reply_payload(union_found)));
    }
    for (std::size_t qi = 0; qi < queries.size(); ++qi)
      serial_cost += sizes.reply_batches(counts[qi]) * back.hops();
  }

  const auto delta = net_.traffic() - before;
  batch.messages = delta.total;
  batch.query_messages = delta.of(net::MessageKind::Query) +
                         delta.of(net::MessageKind::SubQuery);
  batch.reply_messages = delta.of(net::MessageKind::Reply);
  if (net_.loss_model().loss_probability == 0.0)
    POOLNET_ASSERT(serial_cost >= delta.total);
  batch.messages_saved =
      serial_cost >= delta.total ? serial_cost - delta.total : 0;
  return batch;
}

storage::AggregateReceipt DimSystem::aggregate(net::NodeId sink,
                                               const RangeQuery& q,
                                               storage::AggregateKind kind,
                                               std::size_t value_dim) {
  if (q.dims() != dims())
    throw ConfigError("DIM: query dimensionality mismatch");
  if (value_dim >= dims())
    throw ConfigError("DIM: aggregate dimension out of range");

  storage::AggregateReceipt receipt;
  const auto before = net_.traffic();
  storage::PartialAggregate total;

  const ZoneIndex start = tree_.enclosing_zone(q);
  if (ZoneTree::zone_intersects(tree_.zone(start), q)) {
    const net::NodeId entry = representative(start);
    const auto leg = router_.route_to_node(sink, entry);
    net_.transmit_path(leg.path, net::MessageKind::Query,
                       net_.sizes().query_bits(dims()));
    walk_subtree(entry, start, q, [&](ZoneIndex leaf) {
      const ZoneNode& z = tree_.zone(leaf);
      ++receipt.index_nodes_visited;
      storage::PartialAggregate partial;
      for (const Event& e : store_[leaf]) {
        if (q.matches(e)) partial.add(e.values[value_dim]);
      }
      if (!partial.empty()) {
        total.merge(partial);
        if (z.owner != sink) {
          // One fixed-size partial straight to the sink.
          const auto back = router_.route_to_node(z.owner, sink);
          net_.transmit_path(back.path, net::MessageKind::Reply,
                             net_.sizes().aggregate_bits());
        }
      }
    });
  }

  receipt.result = total.finalize(kind);
  const auto delta = net_.traffic() - before;
  receipt.messages = delta.total;
  receipt.query_messages = delta.of(net::MessageKind::Query) +
                           delta.of(net::MessageKind::SubQuery);
  receipt.reply_messages = delta.of(net::MessageKind::Reply);
  return receipt;
}

std::size_t DimSystem::expire_before(double cutoff) {
  std::size_t removed = 0;
  for (const ZoneIndex leaf : tree_.leaves()) {
    auto& events = store_[leaf];
    const auto before = events.size();
    std::erase_if(events, [cutoff](const Event& e) {
      return e.detected_at < cutoff;
    });
    const auto gone = before - events.size();
    if (gone > 0) {
      removed += gone;
      net_.node_mut(tree_.zone(leaf).owner).stored_events -= gone;
    }
  }
  stored_count_ -= removed;
  return removed;
}

const std::vector<Event>& DimSystem::zone_store(ZoneIndex leaf) const {
  POOLNET_ASSERT(leaf < store_.size());
  return store_[leaf];
}

}  // namespace poolnet::dim
