// DIM — Distributed Index for Multi-dimensional data (Li et al., SenSys'03).
//
// The comparison baseline of the paper's evaluation (Section 5): the only
// prior DCS system supporting multi-dimensional range queries. Events are
// hashed to zones via the zone tree; queries are addressed to the deepest
// zone enclosing them and then recursively split toward every overlapping
// leaf zone; leaf owners return qualifying events directly to the sink.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "dim/zone_tree.h"
#include "net/network.h"
#include "routing/reliable.h"
#include "routing/router.h"
#include "storage/column/column_store.h"
#include "storage/dcs_system.h"

namespace poolnet::dim {

class DimSystem final : public storage::DcsSystem {
 public:
  DimSystem(net::Network& network, const routing::Router& router,
            std::size_t dims);

  std::string name() const override { return "DIM"; }
  std::string describe() const override;
  std::size_t dims() const override { return tree_.dims(); }

  storage::InsertReceipt insert(net::NodeId source,
                                const storage::Event& event) override;
  storage::QueryReceipt query(net::NodeId sink,
                              const storage::RangeQuery& query) override;

  /// Merged multi-query execution: the shared dissemination tree is the
  /// UNION of each query's serial forwarding legs with identical legs
  /// charged once, and each answering leaf replies once with the distinct
  /// matching events of all askers — so the batch never costs more than
  /// the serial sum, even for disjoint queries whose zone walks diverge.
  /// Per-query results are identical to serial query() calls (DESIGN.md §8).
  storage::BatchQueryReceipt query_batch(
      net::NodeId sink,
      const std::vector<storage::RangeQuery>& queries) override;

  /// Skyline with zone-corner dominance pruning: every leaf zone's best
  /// possible point is the top of its value-range box (known to the sink
  /// from the shared zone code, no messages). Zones are visited
  /// best-corner-first and a zone whose corner is dominated by an
  /// already-collected event is never contacted.
  storage::QueryReceipt skyline(net::NodeId sink,
                                const storage::SkylineQuery& query) override;

  /// k nearest stored events by expanding-ring search over leaf zones:
  /// each round contacts the not-yet-visited zones overlapping the
  /// current box; owners reply with their local top-k, and the search
  /// stops once the k-th best candidate provably lies inside the ring.
  storage::QueryReceipt k_nearest(
      net::NodeId sink, const storage::KNearestQuery& query) override;

  /// Aggregates are computed per leaf zone; each answering owner sends a
  /// fixed-size partial straight to the sink (DIM has no in-network merge
  /// point, unlike Pool's splitters).
  storage::AggregateReceipt aggregate(net::NodeId sink,
                                      const storage::RangeQuery& query,
                                      storage::AggregateKind kind,
                                      std::size_t value_dim) override;

  std::size_t stored_count() const override { return stored_count_; }
  std::size_t expire_before(double cutoff) override;

  /// Online failover: orphaned leaf zones are adopted by the zone-tree
  /// neighbor (the closest surviving owner in the nearest enclosing
  /// sibling subtree — DIM's backup-zone rule applied at runtime). Events
  /// resident at the dead owner are counted lost (DIM stores no mirrors);
  /// cached representatives of the dead node are forgotten. Idempotent.
  void handle_node_failure(net::NodeId dead) override;

  const ZoneTree& tree() const { return tree_; }

  const storage::column::ScanStats* scan_stats() const override {
    return &scan_stats_;
  }

  /// Events resident in a given leaf zone, materialized from the column
  /// store in insertion order (diagnostics, load analysis).
  std::vector<storage::Event> zone_store(ZoneIndex leaf) const;

  /// Number of leaf zones a query must visit (pruning diagnostic).
  std::size_t relevant_zone_count(const storage::RangeQuery& q) const {
    return tree_.leaves_overlapping(q).size();
  }

 private:
  /// Node a (sub)query is addressed to when targeting this zone.
  net::NodeId representative(ZoneIndex zidx) const;

  /// One reliable leg: send, accumulate retry/failure stats, and run
  /// failover for every node the delivery discovered dead. Returns a
  /// reference to the per-system scratch outcome — valid only until the
  /// next send_leg call, so consume it before sending again.
  const routing::LegOutcome& send_leg(net::NodeId from, net::NodeId to,
                                      net::MessageKind kind,
                                      std::uint64_t bits);

  /// Shared recursive split-and-forward walk. `on_leaf(zidx)` runs at the
  /// owner of every relevant leaf after the subquery legs are charged.
  template <typename LeafFn>
  void walk_subtree(net::NodeId carrier, ZoneIndex zidx,
                    const storage::RangeQuery& q, LeafFn&& on_leaf);

  void process_subtree(net::NodeId carrier, ZoneIndex zidx,
                       const storage::RangeQuery& q, net::NodeId sink,
                       storage::QueryReceipt& receipt);

  /// Replays one query's serial walk WITHOUT charging the ledger: records
  /// every leg walk_subtree would transmit into `legs` (computing each
  /// route once), adds the legs' hop counts to `cost`, and fires on_leaf
  /// at every relevant leaf in serial visit order.
  void serial_probe(net::NodeId carrier, ZoneIndex zidx,
                    const storage::RangeQuery& q,
                    std::map<std::pair<net::NodeId, net::NodeId>,
                             routing::RouteResult>& legs,
                    std::uint64_t& cost,
                    const std::function<void(ZoneIndex)>& on_leaf) const;

  net::Network& net_;
  const routing::Router& router_;

  /// Reused across every leg/route on the hot query/insert paths so a
  /// warm system issues them without heap traffic.
  routing::LegOutcome leg_scratch_;
  routing::RouteResult route_scratch_;

  ZoneTree tree_;
  std::vector<storage::column::ColumnStore> store_;  // indexed by ZoneIndex
  mutable storage::column::ScanStats scan_stats_;
  std::size_t stored_count_ = 0;
  mutable std::vector<net::NodeId> rep_cache_;

  /// Nodes whose failure has already been absorbed (failover is
  /// idempotent per node). Allocated lazily on the first failure.
  std::vector<char> known_dead_;
};

}  // namespace poolnet::dim
