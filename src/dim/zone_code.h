// Zone codes — DIM's binary addresses (Li et al., SenSys 2003).
//
// A zone code is a bit string b0 b1 ... b_{m-1}. Bit j records the j-th
// binary split decision, simultaneously in two spaces:
//  * geographically: the deployment field is bisected vertically at even
//    depths and horizontally at odd depths; bit 1 selects the upper half;
//  * in attribute space: attribute (j mod k) has its current range halved;
//    bit 1 selects the upper half.
// This double meaning is DIM's locality-preserving geographic hash: events
// with nearby attribute values map to geographically nearby zones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/assert.h"

namespace poolnet::dim {

/// Up to 64 split levels — far beyond any practical zone depth (a network
/// of n nodes splits to depth ~log2(n) + a few).
class ZoneCode {
 public:
  static constexpr std::size_t kMaxLength = 64;

  constexpr ZoneCode() = default;

  /// Parses a string of '0'/'1' characters (test convenience).
  static ZoneCode from_string(const std::string& bits);

  constexpr std::size_t length() const { return length_; }
  constexpr bool empty() const { return length_ == 0; }

  /// Bit at depth i (0 = first split). Requires i < length().
  constexpr bool bit(std::size_t i) const {
    POOLNET_ASSERT(i < length_);
    return (bits_ >> i) & 1u;
  }

  /// Code extended by one split decision.
  constexpr ZoneCode child(bool upper) const {
    POOLNET_ASSERT_MSG(length_ < kMaxLength, "zone code overflow");
    ZoneCode c = *this;
    if (upper) c.bits_ |= (std::uint64_t{1} << c.length_);
    ++c.length_;
    return c;
  }

  /// True when *this is a (possibly equal) prefix of `other`.
  constexpr bool prefix_of(const ZoneCode& other) const {
    if (length_ > other.length_) return false;
    if (length_ == 0) return true;
    const std::uint64_t mask = length_ == 64
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << length_) - 1);
    return (bits_ & mask) == (other.bits_ & mask);
  }

  std::string to_string() const;

  friend constexpr bool operator==(const ZoneCode& a, const ZoneCode& b) {
    if (a.length_ != b.length_) return false;
    if (a.length_ == 0) return true;
    const std::uint64_t mask = a.length_ == 64
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << a.length_) - 1);
    return (a.bits_ & mask) == (b.bits_ & mask);
  }

 private:
  std::uint64_t bits_ = 0;  // bit i of bits_ = split decision at depth i
  std::size_t length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ZoneCode& code);

}  // namespace poolnet::dim
