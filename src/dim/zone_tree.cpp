#include "dim/zone_tree.h"

#include <algorithm>

#include "common/error.h"

namespace poolnet::dim {

namespace {
// Events at exactly 1.0 are clamped just below so the half-open range
// arithmetic places them in the top slice.
constexpr double kTopClamp = 1.0 - 1e-12;

double clamp01(double v) {
  if (v < 0.0) return 0.0;
  if (v >= 1.0) return kTopClamp;
  return v;
}
}  // namespace

ZoneTree::ZoneTree(const net::Network& network, std::size_t dims)
    : dims_(dims) {
  if (dims == 0 || dims > storage::kMaxDims)
    throw ConfigError("ZoneTree: bad dimensionality");
  std::vector<net::NodeId> ids(network.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<net::NodeId>(i);
  std::array<HalfOpenInterval, storage::kMaxDims> ranges{};
  for (std::size_t d = 0; d < dims_; ++d) ranges[d] = {0.0, 1.0};
  build(network.field(), ids, ZoneCode{}, ranges, 0, network);
}

ZoneIndex ZoneTree::build(
    Rect region, std::vector<net::NodeId>& ids, ZoneCode code,
    const std::array<HalfOpenInterval, storage::kMaxDims>& ranges,
    std::uint32_t depth, const net::Network& network) {
  const auto idx = static_cast<ZoneIndex>(nodes_.size());
  nodes_.push_back({});
  {
    ZoneNode& z = nodes_[idx];
    z.code = code;
    z.region = region;
    z.ranges = ranges;
    z.depth = depth;
  }

  if (ids.size() <= 1 || depth >= ZoneCode::kMaxLength) {
    ZoneNode& z = nodes_[idx];
    z.owner = ids.empty() ? network.nearest_node(region.center()) : ids.front();
    leaves_.push_back(idx);
    return idx;
  }

  // Geographic bisection: vertical (x) at even depth, horizontal at odd.
  const bool split_x = (depth % 2) == 0;
  const double geo_mid = split_x ? (region.min_x + region.max_x) / 2.0
                                 : (region.min_y + region.max_y) / 2.0;
  Rect lower_region = region, upper_region = region;
  if (split_x) {
    lower_region.max_x = geo_mid;
    upper_region.min_x = geo_mid;
  } else {
    lower_region.max_y = geo_mid;
    upper_region.min_y = geo_mid;
  }

  std::vector<net::NodeId> lower_ids, upper_ids;
  for (const net::NodeId id : ids) {
    const Point p = network.position(id);
    const double coord = split_x ? p.x : p.y;
    (coord < geo_mid ? lower_ids : upper_ids).push_back(id);
  }
  ids.clear();
  ids.shrink_to_fit();

  // Attribute bisection in lock-step: attribute depth % k halves its range.
  const std::size_t attr = depth % dims_;
  const HalfOpenInterval r = ranges[attr];
  const double attr_mid = (r.lo + r.hi) / 2.0;
  auto lower_ranges = ranges;
  auto upper_ranges = ranges;
  lower_ranges[attr] = {r.lo, attr_mid};
  upper_ranges[attr] = {attr_mid, r.hi};

  const ZoneIndex lower = build(lower_region, lower_ids, code.child(false),
                                lower_ranges, depth + 1, network);
  const ZoneIndex upper = build(upper_region, upper_ids, code.child(true),
                                upper_ranges, depth + 1, network);
  nodes_[idx].lower = lower;
  nodes_[idx].upper = upper;
  return idx;
}

const ZoneNode& ZoneTree::zone(ZoneIndex i) const {
  POOLNET_ASSERT(i < nodes_.size());
  return nodes_[i];
}

ZoneIndex ZoneTree::leaf_for_event(const storage::Event& e) const {
  POOLNET_ASSERT(e.dims() == dims_);
  ZoneIndex cur = root();
  while (!nodes_[cur].is_leaf()) {
    const ZoneNode& z = nodes_[cur];
    const std::size_t attr = z.depth % dims_;
    const HalfOpenInterval r = z.ranges[attr];
    const double mid = (r.lo + r.hi) / 2.0;
    cur = clamp01(e.values[attr]) < mid ? z.lower : z.upper;
  }
  return cur;
}

ZoneIndex ZoneTree::leaf_for_position(Point p) const {
  ZoneIndex cur = root();
  while (!nodes_[cur].is_leaf()) {
    const ZoneNode& z = nodes_[cur];
    const bool split_x = (z.depth % 2) == 0;
    const double mid = split_x ? (z.region.min_x + z.region.max_x) / 2.0
                               : (z.region.min_y + z.region.max_y) / 2.0;
    const double coord = split_x ? p.x : p.y;
    cur = coord < mid ? z.lower : z.upper;
  }
  return cur;
}

bool ZoneTree::zone_intersects(const ZoneNode& z,
                               const storage::RangeQuery& q) {
  for (std::size_t d = 0; d < q.dims(); ++d) {
    // Events at exactly 1.0 are clamped just below 1 when hashed, so the
    // query bound must be clamped into the same space — otherwise a
    // closed bound touching 1.0 misses the top half-open zone slice.
    ClosedInterval b = q.bound(d);
    b.lo = clamp01(b.lo);
    b.hi = clamp01(b.hi);
    if (!intersects(z.ranges[d], b)) return false;
  }
  return true;
}

std::vector<ZoneIndex> ZoneTree::leaves_overlapping(
    const storage::RangeQuery& q) const {
  POOLNET_ASSERT(q.dims() == dims_);
  std::vector<ZoneIndex> out;
  std::vector<ZoneIndex> stack{root()};
  while (!stack.empty()) {
    const ZoneIndex i = stack.back();
    stack.pop_back();
    const ZoneNode& z = nodes_[i];
    if (!zone_intersects(z, q)) continue;
    if (z.is_leaf()) {
      out.push_back(i);
    } else {
      stack.push_back(z.upper);
      stack.push_back(z.lower);
    }
  }
  return out;
}

void ZoneTree::reassign_leaf(ZoneIndex leaf, net::NodeId new_owner) {
  POOLNET_ASSERT(leaf < nodes_.size());
  POOLNET_ASSERT(nodes_[leaf].is_leaf());
  nodes_[leaf].owner = new_owner;
}

net::NodeId ZoneTree::adopting_neighbor(ZoneIndex leaf,
                                        const net::Network& network) const {
  POOLNET_ASSERT(leaf < nodes_.size() && nodes_[leaf].is_leaf());

  // The tree stores no parent links (queries never need them); failover is
  // rare enough that one O(n) scan per call is the simplest safe choice.
  std::vector<ZoneIndex> parent(nodes_.size(), kNoZone);
  for (ZoneIndex i = 0; i < nodes_.size(); ++i) {
    const ZoneNode& z = nodes_[i];
    if (z.is_leaf()) continue;
    parent[z.lower] = i;
    parent[z.upper] = i;
  }

  const Point orphan_center = nodes_[leaf].region.center();
  const net::NodeId dead = nodes_[leaf].owner;

  // Best surviving owner within a subtree, by distance to the orphaned
  // zone's center (deterministic id tie-break).
  const auto best_in = [&](ZoneIndex sub) {
    net::NodeId best = net::kNoNode;
    double best_d = 0.0;
    std::vector<ZoneIndex> stack{sub};
    while (!stack.empty()) {
      const ZoneIndex i = stack.back();
      stack.pop_back();
      const ZoneNode& z = nodes_[i];
      if (!z.is_leaf()) {
        stack.push_back(z.upper);
        stack.push_back(z.lower);
        continue;
      }
      const net::NodeId cand = z.owner;
      if (cand == net::kNoNode || cand == dead || !network.alive(cand))
        continue;
      const double d = distance(network.position(cand), orphan_center);
      if (best == net::kNoNode || d < best_d ||
          (d == best_d && cand < best)) {
        best = cand;
        best_d = d;
      }
    }
    return best;
  };

  // Walk up: at each ancestor, search the sibling subtree we have not yet
  // covered. The first level with a survivor is the nearest enclosing
  // sibling subtree — DIM's backup-zone adoption applied to failures.
  ZoneIndex cur = leaf;
  while (parent[cur] != kNoZone) {
    const ZoneIndex up = parent[cur];
    const ZoneIndex sibling =
        nodes_[up].lower == cur ? nodes_[up].upper : nodes_[up].lower;
    const net::NodeId found = best_in(sibling);
    if (found != net::kNoNode) return found;
    cur = up;
  }
  return net::kNoNode;
}

ZoneIndex ZoneTree::enclosing_zone(const storage::RangeQuery& q) const {
  POOLNET_ASSERT(q.dims() == dims_);
  ZoneIndex cur = root();
  while (!nodes_[cur].is_leaf()) {
    const ZoneNode& z = nodes_[cur];
    const std::size_t attr = z.depth % dims_;
    const HalfOpenInterval r = z.ranges[attr];
    const double mid = (r.lo + r.hi) / 2.0;
    const ClosedInterval b = q.bound(attr);
    if (b.hi < mid) {
      cur = z.lower;
    } else if (b.lo >= mid) {
      cur = z.upper;
    } else {
      break;  // query straddles the split: this is the deepest enclosure
    }
  }
  return cur;
}

}  // namespace poolnet::dim
