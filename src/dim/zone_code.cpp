#include "dim/zone_code.h"

#include <ostream>

#include "common/error.h"

namespace poolnet::dim {

ZoneCode ZoneCode::from_string(const std::string& bits) {
  if (bits.size() > kMaxLength)
    throw ConfigError("zone code string too long");
  ZoneCode c;
  for (const char ch : bits) {
    if (ch != '0' && ch != '1')
      throw ConfigError("zone code string must be binary");
    c = c.child(ch == '1');
  }
  return c;
}

std::string ZoneCode::to_string() const {
  std::string s;
  s.reserve(length());
  for (std::size_t i = 0; i < length(); ++i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

std::ostream& operator<<(std::ostream& os, const ZoneCode& code) {
  return os << code.to_string();
}

}  // namespace poolnet::dim
