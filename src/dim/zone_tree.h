// The DIM zone tree.
//
// DIM embeds a k-d-tree-like index in the network: the field is split
// recursively (x, then y, then x, ...) until every zone holds at most one
// sensor; in lock-step, attribute space is split (attr 0, attr 1, ...,
// attr k-1, attr 0, ...). A zone therefore owns both a geographic region
// and a k-dimensional value-range box, tied together by its ZoneCode.
//
// The protocol builds zones from neighbor beacons; the simulator builds
// the identical global structure directly (DESIGN.md §2). Zones that end
// up empty of sensors are adopted by the nearest node — DIM's backup-zone
// behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "dim/zone_code.h"
#include "net/network.h"
#include "storage/event.h"
#include "storage/range_query.h"

namespace poolnet::dim {

/// Index of a node within the ZoneTree's node array.
using ZoneIndex = std::uint32_t;
inline constexpr ZoneIndex kNoZone = static_cast<ZoneIndex>(-1);

struct ZoneNode {
  ZoneCode code;
  Rect region;  ///< geographic extent

  /// Value range per attribute implied by the code (half-open; the top
  /// slice is [x, 1) with events at exactly 1.0 clamped in).
  std::array<HalfOpenInterval, storage::kMaxDims> ranges;

  ZoneIndex lower = kNoZone;  ///< child with split bit 0
  ZoneIndex upper = kNoZone;  ///< child with split bit 1
  net::NodeId owner = net::kNoNode;  ///< leaf only

  std::uint32_t depth = 0;

  bool is_leaf() const { return lower == kNoZone; }
};

class ZoneTree {
 public:
  /// Builds the zone tree for `network`, indexing `dims`-dimensional
  /// events. Splitting stops when a region holds <= 1 sensor.
  ZoneTree(const net::Network& network, std::size_t dims);

  std::size_t dims() const { return dims_; }
  const ZoneNode& zone(ZoneIndex i) const;
  ZoneIndex root() const { return 0; }
  std::size_t size() const { return nodes_.size(); }

  std::size_t leaf_count() const { return leaves_.size(); }
  const std::vector<ZoneIndex>& leaves() const { return leaves_; }

  /// Leaf zone that stores `e` (the zone whose code prefixes the event's
  /// code, i.e. whose value-range box contains the event).
  ZoneIndex leaf_for_event(const storage::Event& e) const;

  /// Leaf zone owned by `node_id`'s own position (the node's home zone).
  ZoneIndex leaf_for_position(Point p) const;

  /// All leaf zones whose value-range boxes intersect `q`, via pruned DFS.
  std::vector<ZoneIndex> leaves_overlapping(const storage::RangeQuery& q) const;

  /// Deepest zone (maximal code prefix) whose value-range box contains all
  /// of `q` — where DIM first addresses a query before splitting it.
  ZoneIndex enclosing_zone(const storage::RangeQuery& q) const;

  /// True when the zone's value-range box intersects the query box.
  static bool zone_intersects(const ZoneNode& z, const storage::RangeQuery& q);

  /// Online failover: moves ownership of `leaf` to `new_owner` (DIM's
  /// backup-zone adoption applied at runtime). The zone keeps its code,
  /// region and ranges; only ownership moves.
  void reassign_leaf(ZoneIndex leaf, net::NodeId new_owner);

  /// The zone-tree neighbor that should adopt `leaf` when its owner
  /// dies: the surviving leaf owner in the nearest enclosing sibling
  /// subtree (walking up ancestors until one holds a survivor) that sits
  /// closest to the orphaned zone's region center. kNoNode when no owner
  /// anywhere survives.
  net::NodeId adopting_neighbor(ZoneIndex leaf,
                                const net::Network& network) const;

 private:
  ZoneIndex build(Rect region, std::vector<net::NodeId>& ids, ZoneCode code,
                  const std::array<HalfOpenInterval, storage::kMaxDims>& ranges,
                  std::uint32_t depth, const net::Network& network);

  std::size_t dims_;
  std::vector<ZoneNode> nodes_;
  std::vector<ZoneIndex> leaves_;
};

}  // namespace poolnet::dim
