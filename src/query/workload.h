// Event workload generators.
//
// The paper's main experiments draw attribute values i.i.d. uniform in
// [0,1] (§5.1). The skewed generators exercise the hotspot scenarios of
// Sections 1 and 4.2: a Gaussian generator concentrates values around a
// center (one busy value region), and a two-mode generator mixes a
// uniform background with a hotspot burst.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "storage/event.h"

namespace poolnet::query {

enum class ValueDistribution {
  Uniform,      ///< each attribute ~ U[0,1]
  Gaussian,     ///< each attribute ~ N(center, spread), clamped to [0,1]
  Hotspot,      ///< with prob. hotspot_fraction draw Gaussian, else Uniform
  Exponential,  ///< each attribute ~ Exp(exp_mean) truncated to [0,1]
};

const char* to_string(ValueDistribution d);

struct WorkloadConfig {
  std::size_t dims = 3;
  ValueDistribution dist = ValueDistribution::Uniform;
  double center = 0.8;            ///< Gaussian / Hotspot mean
  double spread = 0.05;           ///< Gaussian / Hotspot stddev
  double hotspot_fraction = 0.7;  ///< Hotspot: share of skewed events
  double exp_mean = 0.15;         ///< Exponential: mean before truncation
};

class EventGenerator {
 public:
  EventGenerator(WorkloadConfig config, std::uint64_t seed);

  /// Next event detected at `source`; ids are sequential from 1.
  storage::Event next(net::NodeId source);

  std::uint64_t generated() const { return next_id_ - 1; }

 private:
  double draw_value();

  WorkloadConfig config_;
  Rng rng_;
  std::uint64_t next_id_ = 1;
};

}  // namespace poolnet::query
