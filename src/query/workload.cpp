#include "query/workload.h"

#include <algorithm>

#include "common/error.h"

namespace poolnet::query {

const char* to_string(ValueDistribution d) {
  switch (d) {
    case ValueDistribution::Uniform: return "uniform";
    case ValueDistribution::Gaussian: return "gaussian";
    case ValueDistribution::Hotspot: return "hotspot";
    case ValueDistribution::Exponential: return "exponential";
  }
  return "?";
}

EventGenerator::EventGenerator(WorkloadConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config.dims == 0 || config.dims > storage::kMaxDims)
    throw ConfigError("EventGenerator: bad dimensionality");
  if (config.spread < 0.0)
    throw ConfigError("EventGenerator: spread must be non-negative");
  if (config.hotspot_fraction < 0.0 || config.hotspot_fraction > 1.0)
    throw ConfigError("EventGenerator: hotspot_fraction must be in [0,1]");
  if (config.dist == ValueDistribution::Exponential && config.exp_mean <= 0.0)
    throw ConfigError("EventGenerator: exp_mean must be positive");
}

double EventGenerator::draw_value() {
  switch (config_.dist) {
    case ValueDistribution::Uniform:
      return rng_.uniform();
    case ValueDistribution::Gaussian:
      return std::clamp(rng_.normal(config_.center, config_.spread), 0.0, 1.0);
    case ValueDistribution::Hotspot:
      if (rng_.bernoulli(config_.hotspot_fraction))
        return std::clamp(rng_.normal(config_.center, config_.spread), 0.0,
                          1.0);
      return rng_.uniform();
    case ValueDistribution::Exponential:
      return rng_.exponential_truncated(config_.exp_mean, 1.0);
  }
  return 0.0;
}

storage::Event EventGenerator::next(net::NodeId source) {
  storage::Event e;
  e.id = next_id_++;
  e.source = source;
  for (std::size_t d = 0; d < config_.dims; ++d)
    e.values.push_back(draw_value());
  return e;
}

}  // namespace poolnet::query
