// Query generators replicating the paper's experiment settings (§5.1).
//
// Exact-match queries draw each dimension's range size from one of the
// DIM paper's distributions (uniform or truncated exponential) and place
// the range uniformly. m-partial queries leave m randomly chosen
// dimensions unspecified and draw the remaining range sizes uniformly
// from [0, 0.25]; 1@n-partial queries pin WHICH dimension is unspecified.
#pragma once

#include <cstddef>
#include <string>

#include "common/rng.h"
#include "storage/query_request.h"
#include "storage/range_query.h"

namespace poolnet::query {

enum class RangeSizeDistribution {
  Uniform,      ///< size ~ U[0, 1]
  Exponential,  ///< size ~ Exp(mean), truncated to [0, 1]
};

const char* to_string(RangeSizeDistribution d);

/// Which query class a generated workload draws (--query-class). Mix
/// rotates uniformly across all three.
enum class QueryClassMix { Range, Skyline, Knn, Mix };

const char* to_string(QueryClassMix mix);

/// Parses a --query-class spec: range | skyline | knn | mix. Returns
/// false and sets `error` on anything else.
bool parse_query_class(const std::string& spec, QueryClassMix* out,
                       std::string* error);

struct QueryGenConfig {
  std::size_t dims = 3;
  RangeSizeDistribution dist = RangeSizeDistribution::Uniform;
  double exp_mean = 0.1;          ///< mean of the exponential size draw
  double partial_range_max = 0.25;  ///< specified-dim size cap, partial queries
};

class QueryGenerator {
 public:
  QueryGenerator(QueryGenConfig config, std::uint64_t seed);

  /// Exact-match range query: every dimension specified, sizes from the
  /// configured distribution.
  storage::RangeQuery exact_range();

  /// m-partial range query: m random dimensions unspecified, the rest
  /// sized U[0, partial_range_max]. Requires m < dims.
  storage::RangeQuery partial_range(std::size_t m);

  /// 1@n-partial query (n is 0-based here; the paper's 1@1 is dim 0):
  /// exactly `unspecified_dim` is a don't-care.
  storage::RangeQuery partial_at(std::size_t unspecified_dim);

  /// Exact-match point query (Li = Ui on every dimension).
  storage::RangeQuery exact_point();

  /// m-partial point query.
  storage::RangeQuery partial_point(std::size_t m);

  /// Skyline query on a uniformly drawn non-empty attribute subset
  /// (subset size U[1, dims], members via a random permutation).
  storage::SkylineQuery skyline_query();

  /// k-NN query with a uniform target point and k ~ U[1, k_max].
  storage::KNearestQuery knn_query(std::size_t k_max = 8);

  /// One query of the given class; Mix rotates uniformly across range
  /// (exact_range), skyline and k-NN draws.
  storage::QueryRequest next(QueryClassMix mix);

 private:
  double draw_size();
  storage::RangeQuery make_partial(
      const FixedVec<bool, storage::kMaxDims>& specified, bool point);

  QueryGenConfig config_;
  Rng rng_;
};

}  // namespace poolnet::query
