#include "query/query_gen.h"

#include "common/error.h"

namespace poolnet::query {

using storage::RangeQuery;

const char* to_string(RangeSizeDistribution d) {
  switch (d) {
    case RangeSizeDistribution::Uniform: return "uniform";
    case RangeSizeDistribution::Exponential: return "exponential";
  }
  return "?";
}

const char* to_string(QueryClassMix mix) {
  switch (mix) {
    case QueryClassMix::Range: return "range";
    case QueryClassMix::Skyline: return "skyline";
    case QueryClassMix::Knn: return "knn";
    case QueryClassMix::Mix: return "mix";
  }
  return "?";
}

bool parse_query_class(const std::string& spec, QueryClassMix* out,
                       std::string* error) {
  if (spec == "range") {
    *out = QueryClassMix::Range;
  } else if (spec == "skyline") {
    *out = QueryClassMix::Skyline;
  } else if (spec == "knn") {
    *out = QueryClassMix::Knn;
  } else if (spec == "mix") {
    *out = QueryClassMix::Mix;
  } else {
    *error = "bad --query-class '" + spec +
             "' (want range, skyline, knn or mix)";
    return false;
  }
  return true;
}

QueryGenerator::QueryGenerator(QueryGenConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config.dims == 0 || config.dims > storage::kMaxDims)
    throw ConfigError("QueryGenerator: bad dimensionality");
  if (config.exp_mean <= 0.0)
    throw ConfigError("QueryGenerator: exponential mean must be positive");
  if (config.partial_range_max <= 0.0 || config.partial_range_max > 1.0)
    throw ConfigError("QueryGenerator: partial_range_max must be in (0,1]");
}

double QueryGenerator::draw_size() {
  switch (config_.dist) {
    case RangeSizeDistribution::Uniform:
      return rng_.uniform();
    case RangeSizeDistribution::Exponential:
      return rng_.exponential_truncated(config_.exp_mean, 1.0);
  }
  return 0.0;
}

RangeQuery QueryGenerator::exact_range() {
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < config_.dims; ++d) {
    const double size = draw_size();
    const double lo = rng_.uniform(0.0, 1.0 - size);
    bounds.push_back({lo, lo + size});
  }
  return RangeQuery(bounds);
}

RangeQuery QueryGenerator::make_partial(
    const FixedVec<bool, storage::kMaxDims>& specified, bool point) {
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < config_.dims; ++d) {
    if (!specified[d]) {
      bounds.push_back({0.0, 1.0});  // rewritten anyway
      continue;
    }
    const double size = point ? 0.0 : rng_.uniform(0.0, config_.partial_range_max);
    const double lo = rng_.uniform(0.0, 1.0 - size);
    bounds.push_back({lo, lo + size});
  }
  return RangeQuery(bounds, specified);
}

RangeQuery QueryGenerator::partial_range(std::size_t m) {
  if (m == 0 || m >= config_.dims)
    throw ConfigError("partial_range: need 0 < m < dims");
  FixedVec<bool, storage::kMaxDims> specified(config_.dims, true);
  const auto perm = rng_.permutation(config_.dims);
  for (std::size_t i = 0; i < m; ++i) specified[perm[i]] = false;
  return make_partial(specified, /*point=*/false);
}

RangeQuery QueryGenerator::partial_at(std::size_t unspecified_dim) {
  if (unspecified_dim >= config_.dims)
    throw ConfigError("partial_at: dimension out of range");
  FixedVec<bool, storage::kMaxDims> specified(config_.dims, true);
  specified[unspecified_dim] = false;
  return make_partial(specified, /*point=*/false);
}

RangeQuery QueryGenerator::exact_point() {
  RangeQuery::Bounds bounds;
  for (std::size_t d = 0; d < config_.dims; ++d) {
    const double v = rng_.uniform();
    bounds.push_back({v, v});
  }
  return RangeQuery(bounds);
}

RangeQuery QueryGenerator::partial_point(std::size_t m) {
  if (m == 0 || m >= config_.dims)
    throw ConfigError("partial_point: need 0 < m < dims");
  FixedVec<bool, storage::kMaxDims> specified(config_.dims, true);
  const auto perm = rng_.permutation(config_.dims);
  for (std::size_t i = 0; i < m; ++i) specified[perm[i]] = false;
  return make_partial(specified, /*point=*/true);
}

storage::SkylineQuery QueryGenerator::skyline_query() {
  const auto count = static_cast<std::size_t>(
      rng_.uniform_int(1, static_cast<std::int64_t>(config_.dims)));
  FixedVec<bool, storage::kMaxDims> attrs(config_.dims, false);
  const auto perm = rng_.permutation(config_.dims);
  for (std::size_t i = 0; i < count; ++i) attrs[perm[i]] = true;
  return storage::SkylineQuery(config_.dims, attrs);
}

storage::KNearestQuery QueryGenerator::knn_query(std::size_t k_max) {
  if (k_max == 0) throw ConfigError("knn_query: k_max must be positive");
  storage::KNearestQuery q;
  for (std::size_t d = 0; d < config_.dims; ++d)
    q.target.push_back(rng_.uniform());
  q.k = static_cast<std::size_t>(
      rng_.uniform_int(1, static_cast<std::int64_t>(k_max)));
  return q;
}

storage::QueryRequest QueryGenerator::next(QueryClassMix mix) {
  if (mix == QueryClassMix::Mix) {
    switch (rng_.uniform_int(0, 2)) {
      case 0: mix = QueryClassMix::Range; break;
      case 1: mix = QueryClassMix::Skyline; break;
      default: mix = QueryClassMix::Knn; break;
    }
  }
  switch (mix) {
    case QueryClassMix::Skyline: return skyline_query();
    case QueryClassMix::Knn: return knn_query();
    default: return exact_range();
  }
}

}  // namespace poolnet::query
