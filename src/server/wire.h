// The poolnetd wire protocol: length-prefixed frames over a byte stream.
//
// Every frame is
//
//   u32  length   (little-endian; bytes after this field: 1 + payload)
//   u8   type     (FrameType)
//   ...  payload  (length - 1 bytes)
//
// Requests carry a client-chosen u64 request id at the start of their
// payload; every response echoes it, so a client may keep several
// requests in flight and demultiplex replies. Integers are little-endian,
// doubles are IEEE-754 bit patterns — encoding the same QueryReceipt
// always produces the same bytes, which is what lets bench/server_load
// compare server results against direct engine execution byte for byte
// (docs/wire_protocol.md is the normative description).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/dcs_system.h"
#include "storage/event.h"

namespace poolnet::server {

enum class FrameType : std::uint8_t {
  Query = 1,             ///< request: u64 id + SELECT text
  Insert = 2,            ///< request: u64 id + INSERT text
  SubscribeMetrics = 3,  ///< request: u64 id (no further payload)
  Result = 4,            ///< response: u64 id + u8 kind + body
  Error = 5,             ///< response: u64 id + u16 code + message text
};

/// The `kind` byte of a Result frame — which request shape it answers.
enum class ResultKind : std::uint8_t {
  Query = 1,    ///< body: encoded event set (encode_events)
  Insert = 2,   ///< body: u32 node id the event was stored at
  Metrics = 3,  ///< body: registry snapshot as JSON text
};

enum class ErrorCode : std::uint16_t {
  ParseError = 1,      ///< statement text did not parse / validate
  TooManyInFlight = 2, ///< per-client admission limit hit
  ServerBusy = 3,      ///< global epoch backpressure limit hit
  ShuttingDown = 4,    ///< server is draining; no new work admitted
  BadFrame = 5,        ///< malformed frame (short payload, unknown type)
};

const char* to_string(ErrorCode code);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> payload;
};

/// Frames larger than this are a protocol violation (the decoder reports
/// an error rather than buffering without bound).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

// --- little-endian primitives --------------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);
void put_text(std::vector<std::uint8_t>& out, const std::string& text);

/// Bounds-checked sequential reader over a payload. Failed reads set a
/// sticky error flag and return zero values, so callers can decode a
/// whole layout and check ok() once.
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// Every remaining byte as text.
  std::string rest_text();

 private:
  const std::uint8_t* take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- frame encoding -------------------------------------------------------

/// Appends one complete frame (length prefix + type + payload bytes).
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  const std::vector<std::uint8_t>& payload);

/// Request frames. `statement` is query-language text (see
/// server::parse_select / parse_insert).
std::vector<std::uint8_t> encode_request(FrameType type,
                                         std::uint64_t request_id,
                                         const std::string& statement);

/// Response frames.
std::vector<std::uint8_t> encode_result(std::uint64_t request_id,
                                        ResultKind kind,
                                        const std::vector<std::uint8_t>& body);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       ErrorCode code,
                                       const std::string& message);

/// The canonical byte encoding of a query answer: u32 count, then per
/// event u64 id, u32 source, u8 dims, dims x f64 values, f64 detected_at
/// — in receipt order, which the engine guarantees matches serial
/// execution. This is the unit of the bench's byte-identity check.
std::vector<std::uint8_t> encode_events(
    const std::vector<storage::Event>& events);

/// Inverse of encode_events. Returns false on malformed bytes.
bool decode_events(const std::vector<std::uint8_t>& body,
                   std::vector<storage::Event>* out);

// --- incremental decoding -------------------------------------------------

/// Feed raw stream bytes in, pop whole frames out. Tolerates arbitrary
/// fragmentation (a frame split across reads, several frames per read).
class FrameDecoder {
 public:
  /// Appends `n` bytes of stream data.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Pops the next complete frame. Returns false when no full frame is
  /// buffered yet.
  bool next(Frame* out);

  /// Set when the stream violated the protocol (oversized or zero-length
  /// frame); the connection should be dropped.
  bool corrupt() const { return corrupt_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< bytes of buf_ already handed out
  bool corrupt_ = false;
};

}  // namespace poolnet::server
