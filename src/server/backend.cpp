#include "server/backend.h"

namespace poolnet::server {

const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::Pool: return "pool";
    case SystemKind::Dim: return "dim";
    case SystemKind::Ght: return "ght";
  }
  return "?";
}

bool parse_system_kind(const std::string& name, SystemKind* out,
                       std::string* error) {
  if (name == "pool") {
    *out = SystemKind::Pool;
  } else if (name == "dim") {
    *out = SystemKind::Dim;
  } else if (name == "ght") {
    *out = SystemKind::Ght;
  } else {
    *error = "unknown system '" + name + "' (expected pool, dim or ght)";
    return false;
  }
  return true;
}

Backend::Backend(BackendConfig config) : config_(config) {
  benchsup::TestbedConfig tb;
  tb.nodes = config_.nodes;
  tb.dims = config_.dims;
  tb.events_per_node = config_.events_per_node;
  tb.seed = config_.seed;
  testbed_ = std::make_unique<benchsup::Testbed>(tb);
  preloaded_ = testbed_->insert_workload();

  switch (config_.system) {
    case SystemKind::Pool:
      system_ = &testbed_->pool();
      break;
    case SystemKind::Dim:
      system_ = &testbed_->dim();
      break;
    case SystemKind::Ght: {
      std::vector<Point> pts;
      for (const auto& n : testbed_->pool_network().nodes())
        pts.push_back(n.pos);
      ght_net_ = std::make_unique<net::Network>(
          std::move(pts), testbed_->pool_network().field(), tb.radio_range);
      ght_gpsr_ = std::make_unique<routing::Gpsr>(*ght_net_);
      const routing::Router* router = ght_gpsr_.get();
      if (tb.route_cache.enabled) {
        ght_cache_ = std::make_unique<routing::RouteCache>(
            *ght_gpsr_, tb.route_cache, &testbed_->metrics(),
            "ght.route_cache");
        router = ght_cache_.get();
      }
      ght_ = std::make_unique<ght::GhtSystem>(*ght_net_, *router,
                                              config_.dims);
      for (const auto& e : testbed_->oracle().all()) ght_->insert(e.source, e);
      system_ = ght_.get();
      break;
    }
  }

  engine_ = std::make_unique<engine::QueryEngine>(
      *system_, config_.engine, &testbed_->metrics(),
      std::string(to_string(config_.system)) + ".engine");
}

}  // namespace poolnet::server
