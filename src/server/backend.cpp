#include "server/backend.h"

#include "bench_support/replay.h"

namespace poolnet::server {

const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::Pool: return "pool";
    case SystemKind::Dim: return "dim";
    case SystemKind::Ght: return "ght";
    case SystemKind::Central: return "central";
  }
  return "?";
}

bool parse_system_kind(const std::string& name, SystemKind* out,
                       std::string* error) {
  if (name == "pool") {
    *out = SystemKind::Pool;
  } else if (name == "dim") {
    *out = SystemKind::Dim;
  } else if (name == "ght") {
    *out = SystemKind::Ght;
  } else if (name == "central") {
    *out = SystemKind::Central;
  } else {
    *error =
        "unknown system '" + name + "' (expected pool, dim, ght or central)";
    return false;
  }
  return true;
}

Backend::Backend(BackendConfig config) : config_(config) {
  benchsup::TestbedConfig tb;
  tb.nodes = config_.nodes;
  tb.dims = config_.dims;
  tb.events_per_node = config_.events_per_node;
  tb.seed = config_.seed;
  testbed_ = std::make_unique<benchsup::Testbed>(tb);
  preloaded_ = testbed_->insert_workload();

  switch (config_.system) {
    case SystemKind::Pool:
      system_ = &testbed_->pool();
      break;
    case SystemKind::Dim:
      system_ = &testbed_->dim();
      break;
    case SystemKind::Ght:
    case SystemKind::Central: {
      std::vector<Point> pts;
      for (const auto& n : testbed_->pool_network().nodes())
        pts.push_back(n.pos);
      extra_net_ = std::make_unique<net::Network>(
          std::move(pts), testbed_->pool_network().field(), tb.radio_range);
      extra_gpsr_ = std::make_unique<routing::Gpsr>(*extra_net_);
      const routing::Router* router = extra_gpsr_.get();
      if (tb.route_cache.enabled) {
        extra_cache_ = std::make_unique<routing::RouteCache>(
            *extra_gpsr_, tb.route_cache, &testbed_->metrics(),
            std::string(to_string(config_.system)) + ".route_cache");
        router = extra_cache_.get();
      }
      if (config_.system == SystemKind::Ght) {
        ght_ = std::make_unique<ght::GhtSystem>(*extra_net_, *router,
                                                config_.dims);
        system_ = ght_.get();
      } else {
        // Base station = node 0 — the sink(), so client operations and
        // answers share the same endpoint.
        central_ = storage::make_central_store(
            config_.dims, config_.store, extra_net_.get(), router,
            net::NodeId{0}, &testbed_->metrics());
        system_ = central_.get();
      }
      benchsup::replay_oracle(testbed_->oracle(), *system_);
      break;
    }
  }

  engine_ = std::make_unique<engine::QueryEngine>(
      *system_, config_.engine, &testbed_->metrics(),
      std::string(to_string(config_.system)) + ".engine");
}

}  // namespace poolnet::server
