// Blocking poolnetd client: connects, writes request frames, reads reply
// frames. Used by bench/server_load, the CI smoke script and the server
// tests; real deployments would speak the wire protocol directly
// (docs/wire_protocol.md).
//
// One Client is one connection and is NOT thread-safe; load generators
// run one Client per worker. Requests may be pipelined: send any number
// of statements, then collect replies with read_reply() — the server
// answers admission rejections immediately and admitted statements when
// their epoch executes, so pipelined replies can arrive out of send
// order. Match them by request_id.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/wire.h"
#include "storage/event.h"

namespace poolnet::server {

/// An ERROR frame surfaced by a convenience round-trip helper.
struct RemoteError : std::runtime_error {
  RemoteError(ErrorCode c, const std::string& msg)
      : std::runtime_error(msg), code(c) {}
  ErrorCode code;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port; throws ConfigError on failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// One decoded reply frame (RESULT or ERROR).
  struct Reply {
    std::uint64_t request_id = 0;
    bool is_error = false;
    ResultKind kind = ResultKind::Query;  ///< valid when !is_error
    std::vector<std::uint8_t> body;       ///< RESULT payload past the header
    ErrorCode code = ErrorCode::ParseError;  ///< valid when is_error
    std::string message;                     ///< valid when is_error
  };

  /// Fire-and-return sends (pipelining building blocks); each returns the
  /// request_id it assigned. Throws std::runtime_error on a dead socket.
  std::uint64_t send_query(const std::string& statement);
  std::uint64_t send_insert(const std::string& statement);
  std::uint64_t send_subscribe_metrics();

  /// Blocks for the next reply frame. Throws std::runtime_error on EOF
  /// or a corrupt stream.
  Reply read_reply();

  /// Round-trip SELECT: sends, awaits the matching reply, decodes the
  /// events. Throws RemoteError on an ERROR reply.
  std::vector<storage::Event> query(const std::string& statement);

  /// Round-trip INSERT: returns the node the event was stored at.
  std::uint32_t insert(const std::string& statement);

  /// Round-trip SUBSCRIBE_METRICS: returns the JSON snapshot text.
  std::string subscribe_metrics();

 private:
  std::uint64_t send_frame(FrameType type, const std::string& statement);
  Reply await(std::uint64_t request_id);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace poolnet::server
