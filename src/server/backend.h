// The serving stack poolnetd fronts: one deployed Testbed, ONE of the
// three DCS systems chosen at startup, and a batched QueryEngine over it.
//
// Built identically by the server binary and by bench/server_load's
// direct-execution arm — same config, same seeds, same construction
// order — which is what makes "server receipts are byte-identical to
// direct engine execution" a meaningful comparison across processes.
#pragma once

#include <memory>
#include <string>

#include "bench_support/testbed.h"
#include "engine/query_engine.h"
#include "ght/ght_system.h"
#include "routing/route_cache.h"
#include "storage/store_config.h"

namespace poolnet::server {

/// Central is the collect-at-the-base-station baseline; its local store
/// engine (flat vector or paged out-of-core) comes from
/// BackendConfig::store.
enum class SystemKind { Pool, Dim, Ght, Central };

const char* to_string(SystemKind kind);
bool parse_system_kind(const std::string& name, SystemKind* out,
                       std::string* error);

struct BackendConfig {
  SystemKind system = SystemKind::Pool;
  std::size_t nodes = 300;
  std::size_t dims = 3;
  std::size_t events_per_node = 3;  ///< workload preloaded before serving
  std::uint64_t seed = 1;
  engine::QueryEngineConfig engine;  ///< server-side batching + result cache
  storage::StoreConfig store;        ///< central store engine (--store)
};

/// Deploys the testbed, preloads the workload into every system (the
/// Testbed inserts into Pool/DIM/oracle; a GHT choice adds its own
/// network copy, as the CLI runner does), and binds a QueryEngine to the
/// chosen system. Single-threaded, like the Testbed underneath.
class Backend {
 public:
  explicit Backend(BackendConfig config);

  const BackendConfig& config() const { return config_; }
  storage::DcsSystem& system() { return *system_; }
  engine::QueryEngine& engine() { return *engine_; }
  benchsup::Testbed& testbed() { return *testbed_; }
  obs::MetricsRegistry& metrics() { return testbed_->metrics(); }

  /// Where client operations enter the network — the paper's sink.
  /// Deterministic (node 0) so separately-built backends agree.
  net::NodeId sink() const { return 0; }

  /// Events preloaded by the workload; server-side inserts must number
  /// their events above this to stay unique.
  std::uint64_t preloaded_events() const { return preloaded_; }

 private:
  BackendConfig config_;
  std::unique_ptr<benchsup::Testbed> testbed_;
  // GHT and Central each ride on their own network over the same
  // positions (the runner's pattern), so per-node accounting never mixes
  // systems.
  std::unique_ptr<net::Network> extra_net_;
  std::unique_ptr<routing::Gpsr> extra_gpsr_;
  std::unique_ptr<routing::RouteCache> extra_cache_;
  std::unique_ptr<ght::GhtSystem> ght_;
  std::unique_ptr<storage::DcsSystem> central_;
  storage::DcsSystem* system_ = nullptr;
  std::unique_ptr<engine::QueryEngine> engine_;
  std::uint64_t preloaded_ = 0;
};

}  // namespace poolnet::server
