#include "server/wire.h"

#include <cstring>

namespace poolnet::server {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::ParseError: return "parse-error";
    case ErrorCode::TooManyInFlight: return "too-many-in-flight";
    case ErrorCode::ServerBusy: return "server-busy";
    case ErrorCode::ShuttingDown: return "shutting-down";
    case ErrorCode::BadFrame: return "bad-frame";
  }
  return "?";
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_text(std::vector<std::uint8_t>& out, const std::string& text) {
  out.insert(out.end(), text.begin(), text.end());
}

const std::uint8_t* PayloadReader::take(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t PayloadReader::u8() {
  const auto* p = take(1);
  return p ? *p : 0;
}

std::uint16_t PayloadReader::u16() {
  const auto* p = take(2);
  if (!p) return 0;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t PayloadReader::u32() {
  const auto* p = take(4);
  if (!p) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t PayloadReader::u64() {
  const auto* p = take(8);
  if (!p) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::rest_text() {
  if (!ok_) return {};
  std::string text(reinterpret_cast<const char*>(data_ + pos_),
                   size_ - pos_);
  pos_ = size_;
  return text;
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  const std::vector<std::uint8_t>& payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size() + 1));
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_request(FrameType type,
                                         std::uint64_t request_id,
                                         const std::string& statement) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, request_id);
  put_text(payload, statement);
  std::vector<std::uint8_t> frame;
  append_frame(frame, type, payload);
  return frame;
}

std::vector<std::uint8_t> encode_result(
    std::uint64_t request_id, ResultKind kind,
    const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, request_id);
  payload.push_back(static_cast<std::uint8_t>(kind));
  payload.insert(payload.end(), body.begin(), body.end());
  std::vector<std::uint8_t> frame;
  append_frame(frame, FrameType::Result, payload);
  return frame;
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       ErrorCode code,
                                       const std::string& message) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, request_id);
  put_u16(payload, static_cast<std::uint16_t>(code));
  put_text(payload, message);
  std::vector<std::uint8_t> frame;
  append_frame(frame, FrameType::Error, payload);
  return frame;
}

std::vector<std::uint8_t> encode_events(
    const std::vector<storage::Event>& events) {
  std::vector<std::uint8_t> body;
  put_u32(body, static_cast<std::uint32_t>(events.size()));
  for (const storage::Event& e : events) {
    put_u64(body, e.id);
    put_u32(body, static_cast<std::uint32_t>(e.source));
    body.push_back(static_cast<std::uint8_t>(e.values.size()));
    for (std::size_t d = 0; d < e.values.size(); ++d)
      put_f64(body, e.values[d]);
    put_f64(body, e.detected_at);
  }
  return body;
}

bool decode_events(const std::vector<std::uint8_t>& body,
                   std::vector<storage::Event>* out) {
  out->clear();
  PayloadReader r(body);
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    storage::Event e;
    e.id = r.u64();
    e.source = static_cast<net::NodeId>(r.u32());
    const std::uint8_t dims = r.u8();
    if (dims > storage::kMaxDims) return false;
    for (std::uint8_t d = 0; d < dims; ++d) e.values.push_back(r.f64());
    e.detected_at = r.f64();
    if (r.ok()) out->push_back(std::move(e));
  }
  return r.ok() && r.remaining() == 0;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, keeping the buffer from
  // growing with total stream volume.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameDecoder::next(Frame* out) {
  if (corrupt_) return false;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return false;
  PayloadReader header(buf_.data() + consumed_, 4);
  const std::uint32_t length = header.u32();
  if (length == 0 || length > kMaxFrameBytes) {
    corrupt_ = true;
    return false;
  }
  if (avail < 4 + static_cast<std::size_t>(length)) return false;
  const std::uint8_t* frame = buf_.data() + consumed_ + 4;
  out->type = static_cast<FrameType>(frame[0]);
  out->payload.assign(frame + 1, frame + length);
  consumed_ += 4 + length;
  return true;
}

}  // namespace poolnet::server
