// poolnetd's core: a concurrent TCP query server over the batched
// QueryEngine.
//
// Threading model (DESIGN.md §12):
//  * one ACCEPT thread owns the listening socket;
//  * one READER thread per connection decodes frames and parses nothing —
//    it forwards commands to the engine thread through one queue;
//  * one ENGINE thread owns every piece of serving state: the Backend
//    (Testbed + DcsSystem + QueryEngine are single-threaded by design),
//    the per-client admission queues, the epoch fill, all socket WRITES,
//    and every server.* metric. One writer means the registry can be
//    scraped live (SUBSCRIBE_METRICS) without violating the scrape
//    discipline, and responses for one connection are never interleaved.
//
// Admission control: a client may have at most max_inflight_per_client
// statements queued, and the server at most max_pending_global across
// all clients; beyond either bound the statement is REJECTED with a
// typed ERROR frame immediately — the server never queues unboundedly.
//
// Fairness: the epoch fill takes queries round-robin ACROSS clients (one
// per client per turn), so a chatty client cannot monopolize an epoch
// ahead of others no matter how deep its queue is.
//
// Shutdown: stop() closes the listener, half-closes every connection for
// reading, lets the engine thread drain — every admitted query still
// executes and its result is written — then joins all threads. Clients
// with requests in flight at SIGTERM get their answers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/backend.h"
#include "server/wire.h"

namespace poolnet::server {

struct ServerConfig {
  BackendConfig backend;

  /// Listen address. Port 0 binds an ephemeral port; read it back with
  /// port() after start().
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Admission control (see file header). Zero is not a valid limit.
  std::size_t max_inflight_per_client = 16;
  std::size_t max_pending_global = 1024;

  /// A partial epoch flushes after this long with no new commands.
  /// Wall-clock, unlike the engine's logical batch_deadline (which the
  /// server pins to "never" — epoch timing is the server's job here).
  std::uint64_t flush_interval_us = 2000;
};

/// Counter view assembled from the registry (server.* namespace); read
/// after stop() or from the engine thread.
struct ServerStats {
  std::uint64_t connections = 0;   ///< sessions accepted, lifetime
  std::uint64_t disconnects = 0;   ///< sessions fully closed
  std::uint64_t queries_in = 0;    ///< SELECTs admitted
  std::uint64_t queries_out = 0;   ///< RESULT frames written for queries
  std::uint64_t inserts = 0;       ///< INSERTs applied
  std::uint64_t rejected = 0;      ///< admission-control ERRORs
  std::uint64_t parse_errors = 0;  ///< statement/frame ERRORs
  std::uint64_t epochs = 0;        ///< epoch executions (incl. partial)
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept + engine threads. Throws
  /// ConfigError when the address cannot be bound.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Drains and joins (see file header). Idempotent; the destructor
  /// calls it.
  void stop();

  bool running() const { return running_; }

  Backend& backend() { return *backend_; }
  ServerStats stats() const;

 private:
  struct Session {
    int fd = -1;
    std::uint64_t id = 0;
    std::thread reader;
    std::atomic<bool> closed{false};  ///< fd has been close()d
  };

  struct Command {
    enum class Kind : std::uint8_t {
      Open,      ///< session accepted
      Closed,    ///< reader finished (EOF, error or corrupt stream)
      Query,     ///< SELECT statement text
      Insert,    ///< INSERT statement text
      Metrics,   ///< SUBSCRIBE_METRICS
      BadFrame,  ///< protocol violation on this session
      Drain,     ///< begin shutdown: finish pending work, then exit
    };
    Kind kind;
    std::shared_ptr<Session> session;
    std::uint64_t request_id = 0;
    std::string text;
  };

  struct PendingQuery {
    std::uint64_t request_id = 0;
    storage::QueryRequest query;
  };

  struct ClientState {
    std::shared_ptr<Session> session;
    std::deque<PendingQuery> queue;  ///< admitted, not yet executed
    /// Reader finished (EOF — possibly our own drain-time SHUT_RD). The
    /// write side stays usable: admitted queries still get answers, and
    /// the session closes only once its queue empties.
    bool input_closed = false;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Session> session);
  void engine_loop();

  void enqueue(Command cmd);
  void handle(Command& cmd);
  void handle_query(Command& cmd);

  /// Tears down a client whose input is closed and whose queue is empty:
  /// closes the fd, leaves the round-robin ring, updates the counters.
  void finish_client(std::uint64_t client_id);

  /// Executes one epoch: fills up to epoch_size_ queries round-robin
  /// across clients, runs them as one engine batch, and writes every
  /// RESULT frame. Engine thread only.
  void run_epoch();

  /// Writes a whole frame to the session (engine thread only); on a dead
  /// peer the session is shut down and the frame dropped.
  void write_frame(const std::shared_ptr<Session>& session,
                   const std::vector<std::uint8_t>& frame);
  void close_session(const std::shared_ptr<Session>& session);

  ServerConfig config_;
  std::unique_ptr<Backend> backend_;
  std::size_t epoch_size_ = 1;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  std::thread accept_thread_;
  std::thread engine_thread_;

  std::mutex sessions_mu_;  ///< accept thread adds; stop() iterates
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Command> queue_;

  // --- engine-thread state (no locks; one owner) ---
  std::map<std::uint64_t, ClientState> clients_;
  std::vector<std::uint64_t> rr_order_;  ///< round-robin client ring
  std::size_t rr_next_ = 0;
  std::size_t pending_total_ = 0;
  std::size_t sessions_open_ = 0;
  bool draining_ = false;
  std::uint64_t next_event_id_ = 0;

  obs::MetricsRegistry::Counter connections_, disconnects_, queries_in_,
      queries_out_, inserts_, rejected_, parse_errors_, epochs_;
  obs::MetricsRegistry::Histogram occupancy_;
};

}  // namespace poolnet::server
