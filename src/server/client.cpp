#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace poolnet::server {

Client::~Client() { close(); }

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw ConfigError("Client: socket() failed: " +
                      std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw ConfigError("Client: bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    close();
    throw ConfigError("Client: cannot connect to " + host + ":" +
                      std::to_string(port) + ": " + why);
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Client::send_frame(FrameType type, const std::string& statement) {
  const std::uint64_t id = next_request_id_++;
  const std::vector<std::uint8_t> frame = encode_request(type, id, statement);
  const std::uint8_t* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("Client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return id;
}

std::uint64_t Client::send_query(const std::string& statement) {
  return send_frame(FrameType::Query, statement);
}

std::uint64_t Client::send_insert(const std::string& statement) {
  return send_frame(FrameType::Insert, statement);
}

std::uint64_t Client::send_subscribe_metrics() {
  return send_frame(FrameType::SubscribeMetrics, "");
}

Client::Reply Client::read_reply() {
  Frame frame;
  while (!decoder_.next(&frame)) {
    if (decoder_.corrupt())
      throw std::runtime_error("Client: corrupt reply stream");
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw std::runtime_error("Client: connection closed by server");
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }

  Reply reply;
  PayloadReader r(frame.payload);
  reply.request_id = r.u64();
  if (frame.type == FrameType::Result) {
    reply.is_error = false;
    reply.kind = static_cast<ResultKind>(r.u8());
    reply.body.assign(frame.payload.begin() +
                          static_cast<std::ptrdiff_t>(frame.payload.size() -
                                                      r.remaining()),
                      frame.payload.end());
  } else if (frame.type == FrameType::Error) {
    reply.is_error = true;
    reply.code = static_cast<ErrorCode>(r.u16());
    reply.message = r.rest_text();
  } else {
    throw std::runtime_error("Client: unexpected frame type " +
                             std::to_string(static_cast<int>(frame.type)));
  }
  if (!r.ok()) throw std::runtime_error("Client: short reply frame");
  return reply;
}

Client::Reply Client::await(std::uint64_t request_id) {
  // Single-request round-trip: the next reply must be ours (the server
  // answers one connection's statements in order of disposition).
  Reply reply = read_reply();
  if (reply.request_id != request_id)
    throw std::runtime_error("Client: reply for request " +
                             std::to_string(reply.request_id) +
                             ", expected " + std::to_string(request_id));
  if (reply.is_error) throw RemoteError(reply.code, reply.message);
  return reply;
}

std::vector<storage::Event> Client::query(const std::string& statement) {
  const Reply reply = await(send_query(statement));
  std::vector<storage::Event> events;
  if (!decode_events(reply.body, &events))
    throw std::runtime_error("Client: malformed event set in reply");
  return events;
}

std::uint32_t Client::insert(const std::string& statement) {
  const Reply reply = await(send_insert(statement));
  PayloadReader r(reply.body);
  const std::uint32_t stored_at = r.u32();
  if (!r.ok()) throw std::runtime_error("Client: malformed insert reply");
  return stored_at;
}

std::string Client::subscribe_metrics() {
  const Reply reply = await(send_subscribe_metrics());
  PayloadReader r(reply.body);
  return r.rest_text();
}

}  // namespace poolnet::server
