#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.h"
#include "server/query_language.h"

namespace poolnet::server {

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.max_inflight_per_client == 0)
    throw ConfigError("Server: max_inflight_per_client must be positive");
  if (config_.max_pending_global == 0)
    throw ConfigError("Server: max_pending_global must be positive");

  // The server owns epoch timing in wall-clock (flush_interval_us), so
  // the engine's logical deadline is pinned to "never": epochs flush
  // exactly when the fill loop says so.
  epoch_size_ = std::max<std::size_t>(1, config_.backend.engine.batch_size);
  config_.backend.engine.batch_size = epoch_size_;
  config_.backend.engine.batch_deadline = std::uint64_t{1} << 40;
  backend_ = std::make_unique<Backend>(config_.backend);
  next_event_id_ = backend_->preloaded_events();

  obs::MetricsRegistry& m = backend_->metrics();
  connections_ = m.counter("server.connections");
  disconnects_ = m.counter("server.disconnects");
  queries_in_ = m.counter("server.queries_in");
  queries_out_ = m.counter("server.queries_out");
  inserts_ = m.counter("server.inserts");
  rejected_ = m.counter("server.rejected");
  parse_errors_ = m.counter("server.parse_errors");
  epochs_ = m.counter("server.epochs");
  occupancy_ = m.histogram("server.epoch.occupancy", 1.0,
                           std::max<std::size_t>(epoch_size_ + 1, 16));
}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw ConfigError("Server: socket() failed: " +
                      std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("Server: bad listen address " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError("Server: cannot listen on " + config_.host + ":" +
                      std::to_string(config_.port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_ = true;
  engine_thread_ = std::thread(&Server::engine_loop, this);
  accept_thread_ = std::thread(&Server::accept_loop, this);
}

void Server::stop() {
  if (!running_.exchange(false)) return;

  // 1. Stop accepting: wake the blocked accept() and join.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Half-close every session for reading: readers see EOF and report
  // Closed, while the write side stays open for drained results.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& s : sessions_) {
      if (!s->closed) ::shutdown(s->fd, SHUT_RD);
    }
  }

  // 3. Drain: the engine thread executes every admitted query, writes
  // the results, then exits once all sessions have closed.
  Command drain;
  drain.kind = Command::Kind::Drain;
  enqueue(std::move(drain));
  if (engine_thread_.joinable()) engine_thread_.join();

  // 4. Join readers and release any fd the engine did not close.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& s : sessions_) {
    if (s->reader.joinable()) s->reader.join();
    if (!s->closed.exchange(true)) ::close(s->fd);
  }
  sessions_.clear();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = connections_.value();
  s.disconnects = disconnects_.value();
  s.queries_in = queries_in_.value();
  s.queries_out = queries_out_.value();
  s.inserts = inserts_.value();
  s.rejected = rejected_.value();
  s.parse_errors = parse_errors_.value();
  s.epochs = epochs_.value();
  return s;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->id = next_session_id_++;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
    }
    // Open is enqueued BEFORE the reader spawns, so the engine always
    // sees a session's Open ahead of any of its statements.
    Command open;
    open.kind = Command::Kind::Open;
    open.session = session;
    enqueue(std::move(open));
    session->reader = std::thread(&Server::reader_loop, this, session);
  }
}

void Server::reader_loop(std::shared_ptr<Session> session) {
  FrameDecoder decoder;
  std::uint8_t buf[4096];
  bool bad = false;
  std::uint64_t bad_request = 0;
  while (!bad) {
    const ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    decoder.feed(buf, static_cast<std::size_t>(n));
    Frame frame;
    while (!bad && decoder.next(&frame)) {
      Command cmd;
      cmd.session = session;
      PayloadReader r(frame.payload);
      cmd.request_id = r.u64();
      if (!r.ok()) {
        bad = true;
        break;
      }
      switch (frame.type) {
        case FrameType::Query:
          cmd.kind = Command::Kind::Query;
          cmd.text = r.rest_text();
          break;
        case FrameType::Insert:
          cmd.kind = Command::Kind::Insert;
          cmd.text = r.rest_text();
          break;
        case FrameType::SubscribeMetrics:
          cmd.kind = Command::Kind::Metrics;
          break;
        default:
          bad = true;
          bad_request = cmd.request_id;
          break;
      }
      if (!bad) enqueue(std::move(cmd));
    }
    if (decoder.corrupt()) bad = true;
  }
  if (bad) {
    Command err;
    err.kind = Command::Kind::BadFrame;
    err.session = session;
    err.request_id = bad_request;
    enqueue(std::move(err));
  }
  Command closed;
  closed.kind = Command::Kind::Closed;
  closed.session = session;
  enqueue(std::move(closed));
}

void Server::enqueue(Command cmd) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(cmd));
  }
  queue_cv_.notify_one();
}

void Server::engine_loop() {
  const auto flush_interval =
      std::chrono::microseconds(config_.flush_interval_us);
  std::unique_lock<std::mutex> lk(queue_mu_);
  for (;;) {
    if (!queue_.empty()) {
      Command cmd = std::move(queue_.front());
      queue_.pop_front();
      lk.unlock();
      handle(cmd);
      while (pending_total_ >= epoch_size_) run_epoch();
      lk.lock();
      continue;
    }
    if (draining_) {
      if (pending_total_ > 0) {
        lk.unlock();
        while (pending_total_ > 0) run_epoch();
        lk.lock();
        continue;
      }
      if (sessions_open_ == 0) break;
      queue_cv_.wait(lk);
      continue;
    }
    if (pending_total_ > 0) {
      if (queue_cv_.wait_for(lk, flush_interval) ==
              std::cv_status::timeout &&
          queue_.empty()) {
        lk.unlock();
        run_epoch();
        lk.lock();
      }
    } else {
      queue_cv_.wait(lk);
    }
  }
}

void Server::handle(Command& cmd) {
  switch (cmd.kind) {
    case Command::Kind::Open: {
      connections_.inc();
      ++sessions_open_;
      clients_[cmd.session->id].session = cmd.session;
      rr_order_.push_back(cmd.session->id);
      break;
    }
    case Command::Kind::Closed: {
      const auto it = clients_.find(cmd.session->id);
      if (it == clients_.end()) break;
      // No more input from this session, but admitted queries still get
      // their answers — the drain contract. Tear down now only when
      // nothing is owed.
      it->second.input_closed = true;
      if (it->second.queue.empty()) finish_client(cmd.session->id);
      break;
    }
    case Command::Kind::Query:
      handle_query(cmd);
      break;
    case Command::Kind::Insert: {
      storage::Values values;
      std::string error;
      if (!parse_insert(cmd.text, config_.backend.dims, &values, &error)) {
        parse_errors_.inc();
        write_frame(cmd.session, encode_error(cmd.request_id,
                                              ErrorCode::ParseError, error));
        break;
      }
      if (draining_) {
        rejected_.inc();
        write_frame(cmd.session,
                    encode_error(cmd.request_id, ErrorCode::ShuttingDown,
                                 "server is draining"));
        break;
      }
      storage::Event e;
      e.id = ++next_event_id_;
      e.source = backend_->sink();
      e.values = values;
      // Inserts route through the engine so cached result rectangles
      // containing the new event invalidate before they can serve stale.
      const storage::InsertReceipt r =
          backend_->engine().insert(backend_->sink(), e);
      inserts_.inc();
      std::vector<std::uint8_t> body;
      put_u32(body, static_cast<std::uint32_t>(r.stored_at));
      write_frame(cmd.session,
                  encode_result(cmd.request_id, ResultKind::Insert, body));
      break;
    }
    case Command::Kind::Metrics: {
      const obs::Snapshot snap = backend_->metrics().scrape();
      std::vector<std::uint8_t> body;
      put_text(body, snap.to_json());
      write_frame(cmd.session,
                  encode_result(cmd.request_id, ResultKind::Metrics, body));
      break;
    }
    case Command::Kind::BadFrame: {
      parse_errors_.inc();
      write_frame(cmd.session,
                  encode_error(cmd.request_id, ErrorCode::BadFrame,
                               "malformed frame"));
      break;
    }
    case Command::Kind::Drain:
      draining_ = true;
      break;
  }
}

void Server::handle_query(Command& cmd) {
  const auto it = clients_.find(cmd.session->id);
  if (it == clients_.end()) return;  // raced with Closed; nothing to answer
  ClientState& client = it->second;

  // Placeholder with valid bounds (RangeQuery rejects empty ones);
  // parse_query overwrites it on success.
  storage::RangeQuery::Bounds one;
  one.push_back(ClosedInterval{0.0, 1.0});
  storage::QueryRequest query{storage::RangeQuery{one}};
  std::string error;
  if (!parse_query(cmd.text, config_.backend.dims, &query, &error)) {
    parse_errors_.inc();
    write_frame(cmd.session,
                encode_error(cmd.request_id, ErrorCode::ParseError, error));
    return;
  }
  if (draining_) {
    rejected_.inc();
    write_frame(cmd.session,
                encode_error(cmd.request_id, ErrorCode::ShuttingDown,
                             "server is draining"));
    return;
  }
  if (client.queue.size() >= config_.max_inflight_per_client) {
    rejected_.inc();
    write_frame(cmd.session,
                encode_error(cmd.request_id, ErrorCode::TooManyInFlight,
                             "client in-flight limit of " +
                                 std::to_string(
                                     config_.max_inflight_per_client) +
                                 " reached"));
    return;
  }
  if (pending_total_ >= config_.max_pending_global) {
    rejected_.inc();
    write_frame(cmd.session,
                encode_error(cmd.request_id, ErrorCode::ServerBusy,
                             "server pending limit of " +
                                 std::to_string(config_.max_pending_global) +
                                 " reached"));
    return;
  }
  client.queue.push_back(PendingQuery{cmd.request_id, std::move(query)});
  ++pending_total_;
  queries_in_.inc();
}

void Server::run_epoch() {
  const std::size_t n = std::min(epoch_size_, pending_total_);
  if (n == 0) return;

  struct Issued {
    std::shared_ptr<Session> session;
    std::uint64_t request_id;
    engine::QueryEngine::Ticket ticket;
  };
  std::vector<Issued> issued;
  issued.reserve(n);

  engine::QueryEngine& eng = backend_->engine();
  const net::NodeId sink = backend_->sink();
  // Fairness: one query per client per turn, so a deep queue on one
  // connection cannot crowd the others out of the epoch.
  std::size_t idle_scans = 0;
  while (issued.size() < n && idle_scans <= rr_order_.size()) {
    if (rr_order_.empty()) break;
    if (rr_next_ >= rr_order_.size()) rr_next_ = 0;
    ClientState& client = clients_.at(rr_order_[rr_next_]);
    ++rr_next_;
    if (client.queue.empty()) {
      ++idle_scans;
      continue;
    }
    idle_scans = 0;
    PendingQuery p = std::move(client.queue.front());
    client.queue.pop_front();
    issued.push_back(
        Issued{client.session, p.request_id, eng.submit(sink, p.query)});
  }
  pending_total_ -= issued.size();
  eng.flush();
  occupancy_.add(static_cast<double>(issued.size()));
  epochs_.inc();

  for (const Issued& i : issued) {
    storage::QueryReceipt r = eng.take(i.ticket);
    write_frame(i.session, encode_result(i.request_id, ResultKind::Query,
                                         encode_events(r.events)));
    queries_out_.inc();
  }

  // Sessions that hit EOF while queries were in flight close once their
  // last answer is written.
  std::vector<std::uint64_t> done;
  for (const auto& [id, client] : clients_) {
    if (client.input_closed && client.queue.empty()) done.push_back(id);
  }
  for (const std::uint64_t id : done) finish_client(id);
}

void Server::finish_client(std::uint64_t client_id) {
  const auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  for (std::size_t i = 0; i < rr_order_.size(); ++i) {
    if (rr_order_[i] != client_id) continue;
    rr_order_.erase(rr_order_.begin() + static_cast<std::ptrdiff_t>(i));
    if (rr_next_ > i) --rr_next_;
    break;
  }
  close_session(it->second.session);
  clients_.erase(it);
  --sessions_open_;
  disconnects_.inc();
}

void Server::write_frame(const std::shared_ptr<Session>& session,
                         const std::vector<std::uint8_t>& frame) {
  if (session == nullptr || session->closed) return;
  const std::uint8_t* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(session->fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Dead peer: stop both directions; the reader reports Closed.
      ::shutdown(session->fd, SHUT_RDWR);
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void Server::close_session(const std::shared_ptr<Session>& session) {
  if (session != nullptr && !session->closed.exchange(true))
    ::close(session->fd);
}

}  // namespace poolnet::server
