#include "server/query_language.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace poolnet::server {
namespace {

/// Whitespace-and-punctuation tokenizer. Punctuation characters that
/// carry grammar ('[', ']', ',', '(', ')') become single-char tokens;
/// everything else splits on whitespace.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  const auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '[' || c == ']' || c == ',' || c == '(' || c == ')') {
      flush();
      tokens.push_back(std::string(1, c));
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return tokens;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool parse_number(const std::string& token, double* out) {
  const char* begin = token.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  return end != begin && *end == '\0';
}

/// Parses an attribute token `a<i>` with i < dims.
bool parse_attr(const std::string& token, std::size_t dims, std::size_t* dim,
                std::string* error) {
  const std::string low = lower(token);
  if (low.size() < 2 || low[0] != 'a') {
    *error = "expected attribute a0..a" + std::to_string(dims - 1) +
             ", got '" + token + "'";
    return false;
  }
  char* end = nullptr;
  const long idx = std::strtol(low.c_str() + 1, &end, 10);
  if (*end != '\0' || idx < 0) {
    *error = "expected attribute a0..a" + std::to_string(dims - 1) +
             ", got '" + token + "'";
    return false;
  }
  if (static_cast<std::size_t>(idx) >= dims) {
    *error = "attribute '" + token + "' out of range for " +
             std::to_string(dims) + "-dimensional events";
    return false;
  }
  *dim = static_cast<std::size_t>(idx);
  return true;
}

/// Stream-style token cursor with a one-call error path.
struct Cursor {
  const std::vector<std::string>& tokens;
  std::size_t pos = 0;

  bool done() const { return pos >= tokens.size(); }
  const std::string& peek() const { return tokens[pos]; }
  std::string take() { return tokens[pos++]; }

  bool expect(const std::string& literal, std::string* error) {
    if (done() || lower(tokens[pos]) != lower(literal)) {
      *error = "expected '" + literal + "'" +
               (done() ? " at end of statement"
                       : ", got '" + tokens[pos] + "'");
      return false;
    }
    ++pos;
    return true;
  }

  bool number(double* out, std::string* error) {
    if (done() || !parse_number(tokens[pos], out)) {
      *error = "expected a number" +
               (done() ? std::string(" at end of statement")
                       : ", got '" + tokens[pos] + "'");
      return false;
    }
    ++pos;
    return true;
  }
};

bool in_unit_range(double v) { return v >= 0.0 && v <= 1.0; }

/// `SELECT SKYLINE [ON a<i>, a<j>, ...]` — the cursor sits after SKYLINE.
bool parse_skyline(Cursor& cur, std::size_t dims, storage::QueryRequest* out,
                   std::string* error) {
  FixedVec<bool, storage::kMaxDims> attrs;
  for (std::size_t d = 0; d < dims; ++d) attrs.push_back(false);
  if (cur.done()) {
    // Bare SKYLINE: dominance over every attribute.
    *out = storage::SkylineQuery(dims);
    return true;
  }
  if (!cur.expect("on", error)) return false;
  bool first = true;
  while (!cur.done()) {
    if (!first && !cur.expect(",", error)) return false;
    first = false;
    std::size_t dim = 0;
    if (cur.done()) {
      *error = "dangling ',' at end of statement";
      return false;
    }
    if (!parse_attr(cur.take(), dims, &dim, error)) return false;
    if (attrs[dim]) {
      *error = "attribute a" + std::to_string(dim) + " listed twice";
      return false;
    }
    attrs[dim] = true;
  }
  if (first) {
    *error = "ON needs at least one attribute";
    return false;
  }
  *out = storage::SkylineQuery(dims, attrs);
  return true;
}

/// `SELECT NEAREST <k> TO (v0, ..., v<k-1>) [WITHIN <r>]` — the cursor
/// sits after NEAREST.
bool parse_nearest(Cursor& cur, std::size_t dims, storage::QueryRequest* out,
                   std::string* error) {
  double k_raw = 0.0;
  if (!cur.number(&k_raw, error)) return false;
  if (k_raw < 1.0 || k_raw != static_cast<double>(
                                  static_cast<std::uint64_t>(k_raw)) ||
      k_raw > 1e6) {
    *error = "NEAREST count must be a positive integer";
    return false;
  }
  storage::KNearestQuery q;
  q.k = static_cast<std::size_t>(k_raw);
  if (!cur.expect("to", error) || !cur.expect("(", error)) return false;
  for (std::size_t d = 0; d < dims; ++d) {
    if (d > 0 && !cur.expect(",", error)) return false;
    double v = 0.0;
    if (!cur.number(&v, error)) return false;
    if (!in_unit_range(v)) {
      *error = "target value " + std::to_string(d) + " must lie in [0, 1]";
      return false;
    }
    q.target.push_back(v);
  }
  if (!cur.expect(")", error)) return false;
  if (!cur.done()) {
    if (!cur.expect("within", error)) return false;
    double r = 0.0;
    if (!cur.number(&r, error)) return false;
    if (r <= 0.0 || r > 1.0) {
      *error = "WITHIN radius must lie in (0, 1]";
      return false;
    }
    q.initial_radius = r;
  }
  if (!cur.done()) {
    *error = "trailing tokens: '" + cur.peek() + "'";
    return false;
  }
  *out = q;
  return true;
}

}  // namespace

bool parse_query(const std::string& text, std::size_t dims,
                 storage::QueryRequest* out, std::string* error) {
  const auto tokens = tokenize(text);
  Cursor cur{tokens};
  if (!cur.expect("select", error)) return false;
  if (!cur.done() && lower(cur.peek()) == "skyline") {
    cur.take();
    return parse_skyline(cur, dims, out, error);
  }
  if (!cur.done() && lower(cur.peek()) == "nearest") {
    cur.take();
    return parse_nearest(cur, dims, out, error);
  }
  storage::RangeQuery::Bounds one;
  one.push_back(ClosedInterval{0.0, 1.0});
  storage::RangeQuery range{one};
  if (!parse_select(text, dims, &range, error)) return false;
  *out = range;
  return true;
}

bool parse_select(const std::string& text, std::size_t dims,
                  storage::RangeQuery* out, std::string* error) {
  const auto tokens = tokenize(text);
  Cursor cur{tokens};
  if (!cur.expect("select", error)) return false;

  storage::RangeQuery::Bounds bounds;
  FixedVec<bool, storage::kMaxDims> specified;
  for (std::size_t d = 0; d < dims; ++d) {
    bounds.push_back(ClosedInterval{0.0, 1.0});
    specified.push_back(false);
  }

  if (!cur.done()) {
    if (!cur.expect("where", error)) return false;
    if (cur.done()) {
      *error = "WHERE needs at least one 'a<i> IN [lo, hi]' clause";
      return false;
    }
    bool first = true;
    while (!cur.done()) {
      if (!first && !cur.expect("and", error)) return false;
      first = false;
      std::size_t dim = 0;
      if (cur.done()) {
        *error = "dangling AND at end of statement";
        return false;
      }
      if (!parse_attr(cur.take(), dims, &dim, error)) return false;
      if (specified[dim]) {
        *error = "attribute a" + std::to_string(dim) + " constrained twice";
        return false;
      }
      double lo = 0.0, hi = 0.0;
      if (!cur.expect("in", error) || !cur.expect("[", error) ||
          !cur.number(&lo, error) || !cur.expect(",", error) ||
          !cur.number(&hi, error) || !cur.expect("]", error)) {
        return false;
      }
      if (!in_unit_range(lo) || !in_unit_range(hi)) {
        *error = "bounds for a" + std::to_string(dim) +
                 " must lie in [0, 1]";
        return false;
      }
      if (hi < lo) {
        *error = "empty range for a" + std::to_string(dim) +
                 ": hi < lo";
        return false;
      }
      bounds[dim] = ClosedInterval{lo, hi};
      specified[dim] = true;
    }
  }

  *out = storage::RangeQuery(bounds, specified);
  return true;
}

bool parse_insert(const std::string& text, std::size_t dims,
                  storage::Values* out, std::string* error) {
  const auto tokens = tokenize(text);
  Cursor cur{tokens};
  if (!cur.expect("insert", error) || !cur.expect("values", error) ||
      !cur.expect("(", error)) {
    return false;
  }
  out->clear();
  for (std::size_t d = 0; d < dims; ++d) {
    if (d > 0 && !cur.expect(",", error)) return false;
    double v = 0.0;
    if (!cur.number(&v, error)) return false;
    if (!in_unit_range(v)) {
      *error = "value " + std::to_string(d) + " must lie in [0, 1]";
      return false;
    }
    out->push_back(v);
  }
  if (!cur.expect(")", error)) return false;
  if (!cur.done()) {
    *error = "trailing tokens after ')': '" + cur.peek() + "'";
    return false;
  }
  return true;
}

std::string to_select_text(const storage::RangeQuery& query) {
  std::ostringstream oss;
  oss.precision(17);  // max_digits10: doubles survive the text round-trip
  oss << "SELECT";
  bool any = false;
  for (std::size_t d = 0; d < query.dims(); ++d) {
    if (!query.specified(d)) continue;
    oss << (any ? " AND " : " WHERE ");
    any = true;
    const ClosedInterval b = query.bound(d);
    oss << "a" << d << " IN [" << b.lo << ", " << b.hi << "]";
  }
  return oss.str();
}

std::string to_query_text(const storage::QueryRequest& request) {
  switch (request.cls()) {
    case storage::QueryClass::Range:
      return to_select_text(request.range());
    case storage::QueryClass::Skyline: {
      const storage::SkylineQuery& q = request.skyline();
      std::ostringstream oss;
      oss << "SELECT SKYLINE";
      bool any = false;
      for (std::size_t d = 0; d < q.dims(); ++d) {
        if (!q.on(d)) continue;
        oss << (any ? ", " : " ON ");
        any = true;
        oss << "a" << d;
      }
      return oss.str();
    }
    case storage::QueryClass::KNearest: {
      const storage::KNearestQuery& q = request.k_nearest();
      std::ostringstream oss;
      oss.precision(17);  // max_digits10: doubles survive the round-trip
      oss << "SELECT NEAREST " << q.k << " TO (";
      for (std::size_t d = 0; d < q.dims(); ++d)
        oss << (d > 0 ? ", " : "") << q.target[d];
      oss << ")";
      if (q.initial_radius > 0.0) oss << " WITHIN " << q.initial_radius;
      return oss.str();
    }
  }
  return "SELECT";  // unreachable
}

}  // namespace poolnet::server
