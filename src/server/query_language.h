// The poolnetd query language: a small text form for the paper's
// multi-dimensional range queries, the derived query classes, and event
// insertions.
//
//   SELECT WHERE a0 IN [0.2, 0.5] AND a2 IN [0.1, 0.9]
//   SELECT                                  (every dimension a don't-care)
//   SELECT SKYLINE ON a0, a2                (maximal events on a0 and a2)
//   SELECT SKYLINE                          (skyline on every attribute)
//   SELECT NEAREST 5 TO (0.3, 0.7, 0.1)     (5 nearest stored events)
//   SELECT NEAREST 5 TO (0.3, 0.7, 0.1) WITHIN 0.2   (initial search ring)
//   INSERT VALUES (0.12, 0.5, 0.98)
//
// Keywords are case-insensitive; attribute names are a0..a<k-1> where k
// is the deployment's dimensionality. Dimensions a SELECT does not
// mention are unspecified — the paper's '*' — so the four query types of
// Section 2 are all expressible. Bounds and values must lie in [0, 1]
// (the normalized attribute space); violations are parse errors, not
// silent clamps, so a client always learns its query was malformed.
#pragma once

#include <string>

#include "storage/event.h"
#include "storage/query_request.h"
#include "storage/range_query.h"

namespace poolnet::server {

/// Parses any SELECT statement — range, SKYLINE or NEAREST — against a
/// `dims`-dimensional deployment. On failure returns false and sets
/// `error` to a client-displayable message (also the payload of the
/// resulting ERROR frame).
bool parse_query(const std::string& text, std::size_t dims,
                 storage::QueryRequest* out, std::string* error);

/// Parses a range SELECT statement (the pre-QueryRequest entry point;
/// SKYLINE/NEAREST statements are errors here).
bool parse_select(const std::string& text, std::size_t dims,
                  storage::RangeQuery* out, std::string* error);

/// Parses `INSERT VALUES (v0, ..., v<k-1>)`; exactly `dims` values, each
/// in [0, 1].
bool parse_insert(const std::string& text, std::size_t dims,
                  storage::Values* out, std::string* error);

/// Formats a RangeQuery as SELECT text that parses back to an equal
/// query (bounds print with max_digits10, so the doubles round-trip
/// exactly). The load generator uses this to feed generated workloads
/// through the server's text path.
std::string to_select_text(const storage::RangeQuery& query);

/// Formats any QueryRequest as SELECT text that parse_query() maps back
/// to an equal request.
std::string to_query_text(const storage::QueryRequest& request);

}  // namespace poolnet::server
